#include "sim/vm.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace prepare {
namespace {

Vm make_vm() { return Vm("vm", 1.0, 512.0); }

TEST(Vm, RejectsBadAllocations) {
  EXPECT_THROW(Vm("v", 0.0, 512.0), CheckFailure);
  EXPECT_THROW(Vm("v", 1.0, 0.0), CheckFailure);
}

TEST(Vm, UncontendedDemandFullyGranted) {
  Vm vm = make_vm();
  vm.begin_tick();
  vm.set_app_cpu_demand(0.4);
  vm.finalize_tick();
  EXPECT_DOUBLE_EQ(vm.app_cpu_granted(), 0.4);
  EXPECT_DOUBLE_EQ(vm.cpu_used(), 0.4);
  EXPECT_DOUBLE_EQ(vm.cpu_utilization(), 0.4);
}

TEST(Vm, HogContentionGivesAppItsFairShare) {
  Vm vm = make_vm();  // app parallelism 1 (default)
  vm.begin_tick();
  vm.set_app_cpu_demand(0.5);
  vm.set_fault_cpu_demand(1.5);  // a hog with 1.5 threads' worth of work
  vm.finalize_tick();
  // Fair share = alloc x 1/(1 + 1.5) = 0.4 cores.
  EXPECT_NEAR(vm.app_cpu_granted(), 0.4, 1e-12);
  EXPECT_DOUBLE_EQ(vm.cpu_used(), 1.0);
  EXPECT_DOUBLE_EQ(vm.cpu_utilization(), 1.0);
  EXPECT_DOUBLE_EQ(vm.cpu_demand(), 2.0);
}

TEST(Vm, ManyWorkerHogSqueezesSingleThreadedApp) {
  Vm vm = make_vm();
  vm.set_app_parallelism(1.0);
  vm.begin_tick();
  vm.set_app_cpu_demand(0.9);
  vm.set_fault_cpu_demand(8.0);
  vm.finalize_tick();
  EXPECT_NEAR(vm.app_cpu_granted(), 1.0 / 9.0, 1e-12);
}

TEST(Vm, HigherParallelismDefendsBiggerShare) {
  Vm vm = make_vm();
  vm.set_app_parallelism(4.0);
  vm.begin_tick();
  vm.set_app_cpu_demand(0.9);
  vm.set_fault_cpu_demand(8.0);
  vm.finalize_tick();
  EXPECT_NEAR(vm.app_cpu_granted(), 4.0 / 12.0, 1e-12);
}

TEST(Vm, WorkConservingWhenHogLeavesSlack) {
  Vm vm = make_vm();
  vm.begin_tick();
  vm.set_app_cpu_demand(0.9);
  vm.set_fault_cpu_demand(0.3);  // light hog: one 0.3-core thread
  vm.finalize_tick();
  // The app's fair share 1/(1+0.3) = 0.769 exceeds what the hog leaves
  // (0.7), so the share wins: the app is not starved below it.
  EXPECT_NEAR(vm.app_cpu_granted(), 1.0 / 1.3, 1e-12);
}

TEST(Vm, BeginTickClearsDemands) {
  Vm vm = make_vm();
  vm.begin_tick();
  vm.set_app_cpu_demand(0.5);
  vm.set_fault_mem_demand(100.0);
  vm.begin_tick();
  vm.finalize_tick();
  EXPECT_DOUBLE_EQ(vm.cpu_used(), 0.0);
  EXPECT_DOUBLE_EQ(vm.mem_used(), 0.0);
}

TEST(Vm, MemoryCappedAtAllocation) {
  Vm vm = make_vm();
  vm.begin_tick();
  vm.set_app_mem_demand(300.0);
  vm.set_fault_mem_demand(400.0);  // demand 700 > alloc 512
  vm.finalize_tick();
  EXPECT_DOUBLE_EQ(vm.mem_used(), 512.0);
  EXPECT_DOUBLE_EQ(vm.free_mem(), 0.0);
  EXPECT_DOUBLE_EQ(vm.mem_demand(), 700.0);
}

TEST(Vm, ComfortableMemoryFullEfficiency) {
  Vm vm = make_vm();
  vm.begin_tick();
  vm.set_app_mem_demand(300.0);  // pressure 0.59 < knee
  vm.finalize_tick();
  EXPECT_DOUBLE_EQ(vm.efficiency(), 1.0);
}

TEST(Vm, PressureDegradesEfficiency) {
  Vm vm = make_vm();
  vm.begin_tick();
  vm.set_app_mem_demand(512.0 * 1.1);  // past the knee
  vm.finalize_tick();
  EXPECT_LT(vm.efficiency(), 1.0);
  EXPECT_GE(vm.efficiency(), vm.memory_model().min_efficiency);
}

TEST(Vm, EfficiencyBottomsAtFloor) {
  Vm vm = make_vm();
  vm.begin_tick();
  vm.set_app_mem_demand(512.0 * 3.0);  // way past pressure_full
  vm.finalize_tick();
  EXPECT_NEAR(vm.efficiency(), vm.memory_model().min_efficiency, 1e-12);
}

TEST(Vm, DegradationIsImmediateRecoveryIsGradual) {
  Vm vm = make_vm();
  // Degrade hard in one tick.
  vm.begin_tick();
  vm.set_app_mem_demand(512.0 * 2.0);
  vm.finalize_tick(Seconds{1.0});
  const double degraded = vm.efficiency();
  EXPECT_NEAR(degraded, vm.memory_model().min_efficiency, 1e-12);
  // Demand drops; one tick later efficiency has only partially healed.
  vm.begin_tick();
  vm.set_app_mem_demand(100.0);
  vm.finalize_tick(Seconds{1.0});
  EXPECT_GT(vm.efficiency(), degraded);
  EXPECT_LT(vm.efficiency(), 1.0);
  // After many recovery time constants it is healthy again.
  for (int i = 0; i < 100; ++i) {
    vm.begin_tick();
    vm.set_app_mem_demand(100.0);
    vm.finalize_tick(Seconds{1.0});
  }
  EXPECT_NEAR(vm.efficiency(), 1.0, 1e-3);
}

TEST(Vm, MigrationPenaltyAppliedAndRemoved) {
  Vm vm = make_vm();
  vm.begin_migration(0.85);
  EXPECT_TRUE(vm.migrating());
  vm.begin_tick();
  vm.set_app_mem_demand(100.0);
  vm.finalize_tick();
  EXPECT_NEAR(vm.efficiency(), 0.85, 1e-12);
  vm.end_migration();
  EXPECT_FALSE(vm.migrating());
  vm.begin_tick();
  vm.set_app_mem_demand(100.0);
  vm.finalize_tick();
  EXPECT_NEAR(vm.efficiency(), 1.0, 1e-12);
}

TEST(Vm, DoubleMigrationRejected) {
  Vm vm = make_vm();
  vm.begin_migration(0.85);
  EXPECT_THROW(vm.begin_migration(0.85), CheckFailure);
}

TEST(Vm, EndMigrationWithoutStartRejected) {
  Vm vm = make_vm();
  EXPECT_THROW(vm.end_migration(), CheckFailure);
}

TEST(Vm, NegativeDemandRejected) {
  Vm vm = make_vm();
  vm.begin_tick();
  EXPECT_THROW(vm.set_app_cpu_demand(-1.0), CheckFailure);
  EXPECT_THROW(vm.set_fault_mem_demand(-1.0), CheckFailure);
}

TEST(Vm, AllocationUpdates) {
  Vm vm = make_vm();
  vm.set_cpu_alloc(2.0);
  vm.set_mem_alloc(1024.0);
  EXPECT_DOUBLE_EQ(vm.cpu_alloc(), 2.0);
  EXPECT_DOUBLE_EQ(vm.mem_alloc(), 1024.0);
  EXPECT_THROW(vm.set_cpu_alloc(0.0), CheckFailure);
}

// Property: granted app CPU never exceeds demand or allocation.
class VmContentionSweep
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(VmContentionSweep, GrantWithinBounds) {
  const auto [app, fault] = GetParam();
  Vm vm = make_vm();
  vm.begin_tick();
  vm.set_app_cpu_demand(app);
  vm.set_fault_cpu_demand(fault);
  vm.finalize_tick();
  EXPECT_LE(vm.app_cpu_granted(), app + 1e-12);
  EXPECT_LE(vm.app_cpu_granted(), vm.cpu_alloc() + 1e-12);
  EXPECT_LE(vm.cpu_used(), vm.cpu_alloc() + 1e-12);
  EXPECT_GE(vm.app_cpu_granted(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Demands, VmContentionSweep,
    ::testing::Values(std::make_pair(0.0, 0.0), std::make_pair(0.5, 0.0),
                      std::make_pair(1.0, 0.0), std::make_pair(2.0, 0.0),
                      std::make_pair(0.5, 0.5), std::make_pair(0.5, 2.0),
                      std::make_pair(3.0, 3.0)));

}  // namespace
}  // namespace prepare
