#include "models/markov_n.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "models/markov.h"
#include "models/markov2.h"

namespace prepare {
namespace {

std::vector<std::size_t> random_sequence(std::size_t n, std::size_t k,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::size_t> seq;
  for (std::size_t i = 0; i < n; ++i)
    seq.push_back(static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(k) - 1)));
  return seq;
}

TEST(NDependentMarkov, RejectsBadConstruction) {
  EXPECT_THROW(NDependentMarkov(0, 3), CheckFailure);
  EXPECT_THROW(NDependentMarkov(1, 1), CheckFailure);
  EXPECT_THROW(NDependentMarkov(2, 3, 0.0), CheckFailure);
  EXPECT_THROW(NDependentMarkov(20, 10), CheckFailure);  // 10^20 states
}

TEST(NDependentMarkov, Order1MatchesSimpleChain) {
  const auto seq = random_sequence(500, 4, 1);
  NDependentMarkov general(1, 4, 0.5);
  MarkovChain simple(4, 0.5);
  general.train(seq);
  simple.train(seq);
  for (std::size_t steps : {1u, 3u, 7u}) {
    const auto a = general.predict(TickIndex{steps});
    const auto b = simple.predict(TickIndex{steps});
    for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(a[i], b[i], 1e-9);
  }
}

TEST(NDependentMarkov, Order2MatchesTwoDependent) {
  const auto seq = random_sequence(600, 3, 2);
  NDependentMarkov general(2, 3, 0.5);
  TwoDependentMarkov two(3, 0.5);
  general.train(seq);
  two.train(seq);
  for (std::size_t steps : {1u, 2u, 5u, 12u}) {
    const auto a = general.predict(TickIndex{steps});
    const auto b = two.predict(TickIndex{steps});
    for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(a[i], b[i], 1e-9);
  }
}

TEST(NDependentMarkov, TransitionRowsAreDistributions) {
  NDependentMarkov m(3, 3, 0.5);
  m.train(random_sequence(800, 3, 3));
  std::vector<std::size_t> ctx(3);
  for (ctx[0] = 0; ctx[0] < 3; ++ctx[0])
    for (ctx[1] = 0; ctx[1] < 3; ++ctx[1])
      for (ctx[2] = 0; ctx[2] < 3; ++ctx[2]) {
        double total = 0.0;
        for (std::size_t n = 0; n < 3; ++n) total += m.transition(ctx, BinIndex{n});
        EXPECT_NEAR(total, 1.0, 1e-9);
      }
}

TEST(NDependentMarkov, ReadyNeedsOrderObservations) {
  NDependentMarkov m(3, 4);
  m.observe(BinIndex{0}, true);
  m.observe(BinIndex{1}, true);
  EXPECT_FALSE(m.ready());
  EXPECT_THROW(m.predict(TickIndex{1}), CheckFailure);
  m.observe(BinIndex{2}, true);
  EXPECT_TRUE(m.ready());
  EXPECT_NO_THROW(m.predict(TickIndex{2}));
}

TEST(NDependentMarkov, Order3DisambiguatesWhereOrder2CanNot) {
  // Period-6 wave 0 1 1 2 1 1 | ... : the order-2 context (1, 1) is
  // followed by 2 half the time (after 0 1 1) and by 0 the other half
  // (after 2 1 1); the order-3 context resolves the ambiguity.
  std::vector<std::size_t> seq;
  for (int r = 0; r < 100; ++r)
    for (std::size_t v : {0u, 1u, 1u, 2u, 1u, 1u}) seq.push_back(v);
  NDependentMarkov three(3, 3, 0.05);
  NDependentMarkov two(2, 3, 0.05);
  three.train(seq);
  two.train(seq);
  // Sequence ends ... 2 1 1: next must be 0.
  EXPECT_GT(three.predict(TickIndex{1})[0], 0.95);
  EXPECT_LT(two.predict(TickIndex{1})[0], 0.65);  // order-2 is torn between 0 and 2
}

TEST(NDependentMarkov, PredictionsAreValidDistributions) {
  NDependentMarkov m(3, 4, 0.2);
  m.train(random_sequence(500, 4, 5));
  for (std::size_t steps : {1u, 4u, 24u}) {
    const auto d = m.predict(TickIndex{steps});
    EXPECT_NEAR(d.sum(), 1.0, 1e-9);
    for (std::size_t i = 0; i < d.size(); ++i) EXPECT_GE(d[i], 0.0);
  }
}

// Order sweep: every order learns the deterministic cycle it can encode.
class MarkovOrderSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MarkovOrderSweep, LearnsCycle) {
  const std::size_t order = GetParam();
  std::vector<std::size_t> seq;
  for (int r = 0; r < 200; ++r)
    for (std::size_t v = 0; v < 4; ++v) seq.push_back(v);
  NDependentMarkov m(order, 4, 0.05);
  m.train(seq);
  // Sequence ends at 3; one step ahead is 0, two ahead 1, ...
  EXPECT_EQ(m.predict(TickIndex{1}).mode(), 0u);
  EXPECT_EQ(m.predict(TickIndex{2}).mode(), 1u);
  EXPECT_EQ(m.predict(TickIndex{6}).mode(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Orders, MarkovOrderSweep,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace prepare
