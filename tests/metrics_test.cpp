#include "obs/metrics.h"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"

namespace prepare {
namespace obs {
namespace {

// --- counters and gauges ----------------------------------------------------

TEST(Counter, AccumulatesAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0.0);
  c.inc();
  c.inc(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  c.reset();
  EXPECT_EQ(c.value(), 0.0);
}

TEST(Gauge, HoldsLastValue) {
  Gauge g;
  g.set(4.0);
  g.set(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), -1.5);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
}

// --- histogram bucket geometry ----------------------------------------------

TEST(Histogram, BucketZeroHoldsSubMinBoundValues) {
  Histogram h;  // min_bound 1e-9
  EXPECT_EQ(h.bucket_index(0.0), 0u);
  EXPECT_EQ(h.bucket_index(0.5e-9), 0u);
  // Negative inputs clamp into bucket 0 rather than indexing out of
  // range.
  EXPECT_EQ(h.bucket_index(-1.0), 0u);
}

TEST(Histogram, BucketBoundariesAreHalfOpen) {
  Histogram h(1.0, 2.0);  // buckets: [0,1), [1,2), [2,4), [4,8), ...
  EXPECT_EQ(h.bucket_index(0.999), 0u);
  EXPECT_EQ(h.bucket_index(1.0), 1u);
  EXPECT_EQ(h.bucket_index(1.999), 1u);
  EXPECT_EQ(h.bucket_index(2.0), 2u);
  EXPECT_EQ(h.bucket_index(3.999), 2u);
  EXPECT_EQ(h.bucket_index(4.0), 3u);
}

TEST(Histogram, ExactBoundsMatchBucketEdges) {
  // The log-based index must agree with the precomputed bit-exact
  // bounds at every edge, where naive log arithmetic is off by one.
  Histogram h(1e-9, 1.1);
  for (std::size_t i = 1; i + 1 < h.bucket_count(); ++i) {
    const double lower = h.bucket_lower(i);
    EXPECT_EQ(h.bucket_index(lower), i) << "at bucket " << i;
    EXPECT_EQ(h.bucket_index(std::nextafter(lower, 0.0)), i - 1)
        << "below bucket " << i;
  }
}

TEST(Histogram, LowerAndUpperAreConsistent) {
  Histogram h(1.0, 2.0);
  for (std::size_t i = 0; i + 1 < h.bucket_count(); ++i)
    EXPECT_DOUBLE_EQ(h.bucket_upper(i), h.bucket_lower(i + 1));
}

// --- histogram quantiles ----------------------------------------------------

TEST(Histogram, EmptyHistogramAnswersZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.quantile(0.99), 0.0);
}

TEST(Histogram, OneSampleAnswersEveryQuantileExactly) {
  Histogram h;
  h.record(3.7e-3);
  EXPECT_EQ(h.count(), 1u);
  // The estimate is clamped into [min, max] == [3.7e-3, 3.7e-3].
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 3.7e-3);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.7e-3);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 3.7e-3);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.7e-3);
}

TEST(Histogram, QuantilesWithinRelativeErrorBound) {
  Histogram h;  // growth 1.1 => ±10% relative error
  std::vector<double> values;
  for (int i = 1; i <= 1000; ++i) values.push_back(i * 1e-6);
  for (double v : values) h.record(v);
  for (double q : {0.5, 0.9, 0.99}) {
    const double exact =
        values[static_cast<std::size_t>(q * 1000) - 1];
    const double estimate = h.quantile(q);
    EXPECT_NEAR(estimate, exact, exact * 0.11)
        << "q=" << q << " exact=" << exact << " est=" << estimate;
  }
}

TEST(Histogram, TracksExactCountSumMinMax) {
  Histogram h;
  h.record(2e-6);
  h.record(8e-6);
  h.record(5e-6);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 15e-6);
  EXPECT_DOUBLE_EQ(h.min(), 2e-6);
  EXPECT_DOUBLE_EQ(h.max(), 8e-6);
  EXPECT_DOUBLE_EQ(h.mean(), 5e-6);
  // Quantiles never leave the observed range.
  EXPECT_GE(h.quantile(0.99), 2e-6);
  EXPECT_LE(h.quantile(0.99), 8e-6);
}

TEST(Histogram, ResetClearsValuesButKeepsGeometry) {
  Histogram h(1.0, 2.0);
  h.record(3.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.bucket_index(2.0), 2u);  // geometry unchanged
}

// --- registry ---------------------------------------------------------------

TEST(MetricsRegistry, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter* a = registry.counter("x.total");
  Counter* b = registry.counter("x.total");
  EXPECT_EQ(a, b);
  a->inc();
  EXPECT_EQ(b->value(), 1.0);
}

TEST(MetricsRegistry, CrossKindNameCollisionThrows) {
  MetricsRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), CheckFailure);
  EXPECT_THROW(registry.histogram("x"), CheckFailure);
  registry.gauge("y");
  EXPECT_THROW(registry.counter("y"), CheckFailure);
}

TEST(MetricsRegistry, ResetZeroesInPlaceKeepingPointers) {
  MetricsRegistry registry;
  Counter* c = registry.counter("c");
  Histogram* h = registry.histogram("h");
  c->inc(5.0);
  h->record(1e-3);
  registry.reset();
  EXPECT_EQ(c->value(), 0.0);
  EXPECT_EQ(h->count(), 0u);
  // The same pointers keep working after reset.
  c->inc();
  EXPECT_EQ(registry.counter("c")->value(), 1.0);
}

TEST(MetricsRegistry, NullSafeHelpersNoOpOnNullRegistry) {
  MetricsRegistry* registry = nullptr;
  EXPECT_EQ(obs::counter(registry, "a"), nullptr);
  EXPECT_EQ(obs::gauge(registry, "b"), nullptr);
  EXPECT_EQ(obs::histogram(registry, "c"), nullptr);
  // Recording through null handles is a no-op, not a crash.
  inc(nullptr);
  set(nullptr, 1.0);
  observe(nullptr, 1.0);
}

}  // namespace
}  // namespace obs
}  // namespace prepare
