#include "workload/trace_workload.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/csv.h"
#include "temp_path.h"

namespace prepare {
namespace {

TEST(TraceWorkload, RejectsBadInput) {
  EXPECT_THROW(TraceWorkload({}), CheckFailure);
  EXPECT_THROW(TraceWorkload({{0.0, 1.0}, {0.0, 2.0}}), CheckFailure);
  EXPECT_THROW(TraceWorkload({{0.0, -1.0}}), CheckFailure);
  EXPECT_THROW(TraceWorkload({{0.0, 1.0}}, 0.0), CheckFailure);
}

TEST(TraceWorkload, InterpolatesLinearly) {
  TraceWorkload w({{0.0, 10.0}, {10.0, 20.0}, {20.0, 0.0}});
  EXPECT_DOUBLE_EQ(w.rate(0.0), 10.0);
  EXPECT_DOUBLE_EQ(w.rate(5.0), 15.0);
  EXPECT_DOUBLE_EQ(w.rate(10.0), 20.0);
  EXPECT_DOUBLE_EQ(w.rate(15.0), 10.0);
}

TEST(TraceWorkload, HoldsBeforeFirstPoint) {
  TraceWorkload w({{5.0, 42.0}, {10.0, 50.0}});
  EXPECT_DOUBLE_EQ(w.rate(0.0), 42.0);
  EXPECT_DOUBLE_EQ(w.rate(5.0), 42.0);
}

TEST(TraceWorkload, WrapsAroundSpan) {
  TraceWorkload w({{0.0, 10.0}, {10.0, 20.0}});
  EXPECT_DOUBLE_EQ(w.rate(15.0), w.rate(5.0));
  EXPECT_DOUBLE_EQ(w.rate(25.0), w.rate(5.0));
}

TEST(TraceWorkload, ScalesRates) {
  TraceWorkload w({{0.0, 10.0}, {10.0, 20.0}}, 3.0);
  EXPECT_DOUBLE_EQ(w.rate(0.0), 30.0);
  EXPECT_DOUBLE_EQ(w.rate(10.0), 60.0);
}

TEST(TraceWorkload, SinglePointIsConstant) {
  TraceWorkload w({{0.0, 7.0}});
  EXPECT_DOUBLE_EQ(w.rate(0.0), 7.0);
  EXPECT_DOUBLE_EQ(w.rate(1234.0), 7.0);
}

TEST(TraceWorkload, LoadsFromCsv) {
  const std::string path = test_util::unique_temp_path("trace_workload.csv");
  {
    CsvWriter csv(path, {"time_s", "rate"});
    csv.row(std::vector<double>{0.0, 100.0});
    csv.row(std::vector<double>{60.0, 200.0});
    csv.row(std::vector<double>{120.0, 50.0});
  }
  const auto w = TraceWorkload::from_csv(path, 2.0);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.span(), 120.0);
  EXPECT_DOUBLE_EQ(w.rate(30.0), 300.0);  // 150 * scale 2
  std::remove(path.c_str());
}

TEST(TraceWorkload, MissingCsvThrows) {
  EXPECT_THROW(TraceWorkload::from_csv("/nonexistent.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace prepare
