#include <memory>

#include <gtest/gtest.h>

#include "common/check.h"
#include "workload/nasa_trace.h"
#include "workload/patterns.h"

namespace prepare {
namespace {

TEST(ConstantWorkload, IsConstant) {
  ConstantWorkload w(42.0);
  EXPECT_DOUBLE_EQ(w.rate(0.0), 42.0);
  EXPECT_DOUBLE_EQ(w.rate(1e6), 42.0);
}

TEST(ConstantWorkload, RejectsNegative) {
  EXPECT_THROW(ConstantWorkload(-1.0), CheckFailure);
}

TEST(StepWorkload, JumpsAtStepTime) {
  StepWorkload w(10.0, 5.0, 100.0);
  EXPECT_DOUBLE_EQ(w.rate(99.9), 10.0);
  EXPECT_DOUBLE_EQ(w.rate(100.0), 15.0);
}

TEST(StepWorkload, NegativeJumpClampsAtZero) {
  StepWorkload w(10.0, -20.0, 0.0);
  EXPECT_DOUBLE_EQ(w.rate(1.0), 0.0);
}

TEST(RampWorkload, GrowsLinearlyInWindow) {
  RampWorkload w(10.0, 2.0, 100.0, 200.0);
  EXPECT_DOUBLE_EQ(w.rate(50.0), 10.0);
  EXPECT_DOUBLE_EQ(w.rate(100.0), 10.0);
  EXPECT_DOUBLE_EQ(w.rate(150.0), 110.0);
  EXPECT_DOUBLE_EQ(w.rate(201.0), 10.0);  // reverts after the window
}

TEST(RampWorkload, CapLimitsGrowth) {
  RampWorkload w(0.0, 10.0, 0.0, 100.0, 50.0);
  EXPECT_DOUBLE_EQ(w.rate(90.0), 50.0);
}

TEST(RampWorkload, RejectsInvertedWindow) {
  EXPECT_THROW(RampWorkload(1.0, 1.0, 10.0, 5.0), CheckFailure);
}

TEST(SineWorkload, OscillatesAroundBase) {
  SineWorkload w(100.0, 10.0, 40.0);
  EXPECT_NEAR(w.rate(0.0), 100.0, 1e-9);
  EXPECT_NEAR(w.rate(10.0), 110.0, 1e-9);  // quarter period
  EXPECT_NEAR(w.rate(30.0), 90.0, 1e-9);   // three quarters
}

TEST(SineWorkload, NeverNegative) {
  SineWorkload w(5.0, 50.0, 10.0);
  for (double t = 0.0; t < 20.0; t += 0.5) EXPECT_GE(w.rate(t), 0.0);
}

TEST(CompositeWorkload, SumsParts) {
  CompositeWorkload w;
  w.add(std::make_unique<ConstantWorkload>(10.0));
  w.add(std::make_unique<StepWorkload>(0.0, 5.0, 50.0));
  EXPECT_DOUBLE_EQ(w.rate(0.0), 10.0);
  EXPECT_DOUBLE_EQ(w.rate(60.0), 15.0);
}

TEST(CompositeWorkload, EmptyIsZero) {
  CompositeWorkload w;
  EXPECT_DOUBLE_EQ(w.rate(123.0), 0.0);
}

TEST(NasaTrace, DeterministicForSeed) {
  NasaTraceWorkload a(NasaTraceConfig{}, 7);
  NasaTraceWorkload b(NasaTraceConfig{}, 7);
  for (double t = 0.0; t < 1000.0; t += 37.0)
    EXPECT_DOUBLE_EQ(a.rate(t), b.rate(t));
}

TEST(NasaTrace, DifferentSeedsDiffer) {
  NasaTraceWorkload a(NasaTraceConfig{}, 7);
  NasaTraceWorkload b(NasaTraceConfig{}, 8);
  bool any_diff = false;
  for (double t = 0.0; t < 2000.0 && !any_diff; t += 13.0)
    any_diff = a.rate(t) != b.rate(t);
  EXPECT_TRUE(any_diff);
}

TEST(NasaTrace, NonNegativeEverywhere) {
  NasaTraceWorkload w(NasaTraceConfig{}, 3);
  for (double t = 0.0; t < 3000.0; t += 7.0) EXPECT_GE(w.rate(t), 0.0);
}

TEST(NasaTrace, DiurnalShapeClimbsFromMidnight) {
  // The compressed day starts at the overnight minimum and peaks mid-day.
  NasaTraceConfig c;
  c.burst_rate_per_day = 0.0;  // isolate the diurnal component
  c.noise = 0.0;
  NasaTraceWorkload w(c, 1);
  const double day = c.day_seconds / c.compression;
  EXPECT_LT(w.rate(0.0), w.rate(day / 2.0));
  EXPECT_NEAR(w.rate(0.0), w.rate(day), w.rate(0.0) * 0.15);
}

TEST(NasaTrace, BurstsRaiseRate) {
  NasaTraceConfig base;
  base.burst_rate_per_day = 0.0;
  base.noise = 0.0;
  NasaTraceConfig bursty = base;
  bursty.burst_rate_per_day = 500.0;  // many bursts
  NasaTraceWorkload quiet(base, 2);
  NasaTraceWorkload loud(bursty, 2);
  EXPECT_GT(loud.burst_count(), 0u);
  double quiet_sum = 0.0, loud_sum = 0.0;
  for (double t = 0.0; t < 1800.0; t += 5.0) {
    quiet_sum += quiet.rate(t);
    loud_sum += loud.rate(t);
  }
  EXPECT_GT(loud_sum, quiet_sum);
}

TEST(NasaTrace, RejectsBadConfig) {
  NasaTraceConfig c;
  c.base_rate = 0.0;
  EXPECT_THROW(NasaTraceWorkload(c, 1), CheckFailure);
}

}  // namespace
}  // namespace prepare
