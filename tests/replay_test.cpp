#include "core/replay.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/experiment.h"
#include "obs/flight_recorder.h"
#include "obs/span_tracer.h"

namespace prepare {
namespace {

const ScenarioResult& leak_trace() {
  static const ScenarioResult trace = [] {
    ScenarioConfig config;
    config.app = AppKind::kSystemS;
    config.fault = FaultKind::kMemoryLeak;
    config.scheme = Scheme::kNoIntervention;
    config.seed = 7;
    return run_scenario(config);
  }();
  return trace;
}

TEST(Replay, ConfirmsTheFaultyVmAroundTheSecondInjection) {
  ReplayConfig config;
  const auto report = replay_trace(leak_trace().store, leak_trace().slo,
                                   config);
  ASSERT_GT(report.confirmed_alerts, 0u);
  // The first confirmed alert must target the faulty VM, after the
  // second injection started and no later than shortly after the
  // violation begins.
  double violation2 = 1e18;
  for (const auto& iv : leak_trace().slo.intervals())
    if (iv.start > 880.0) {
      violation2 = iv.start;
      break;
    }
  const ReplayAlert* first = nullptr;
  for (const auto& alert : report.alerts)
    if (alert.confirmed) {
      first = &alert;
      break;
    }
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->vm, leak_trace().faulty_vm);
  EXPECT_GE(first->time, 900.0);
  EXPECT_LE(first->time, violation2 + 15.0);
}

TEST(Replay, AlertsCarryAttribution) {
  const auto report =
      replay_trace(leak_trace().store, leak_trace().slo, ReplayConfig{});
  for (const auto& alert : report.alerts) {
    if (!alert.confirmed) continue;
    EXPECT_FALSE(alert.top_metrics.empty());
  }
}

TEST(Replay, CountersConsistent) {
  const auto report =
      replay_trace(leak_trace().store, leak_trace().slo, ReplayConfig{});
  std::size_t confirmed = 0;
  double prev = -1.0;
  for (const auto& alert : report.alerts) {
    EXPECT_GE(alert.time, prev);  // chronological (ties across VMs ok)
    prev = alert.time;
    if (alert.confirmed) ++confirmed;
  }
  EXPECT_EQ(confirmed, report.confirmed_alerts);
  EXPECT_GE(report.raw_alerts, report.confirmed_alerts > 0 ? 1u : 0u);
}

TEST(Replay, SubsetOfVms) {
  const auto report =
      replay_trace(leak_trace().store, leak_trace().slo, ReplayConfig{},
                   {leak_trace().faulty_vm});
  for (const auto& alert : report.alerts)
    EXPECT_EQ(alert.vm, leak_trace().faulty_vm);
  EXPECT_GT(report.confirmed_alerts, 0u);
}

TEST(Replay, FaultFreeTraceNeverAlerts) {
  // A trace with no fault anywhere: training has no abnormal labels, so
  // the supervised models are suppressed and the replay must be silent.
  ScenarioConfig config;
  config.app = AppKind::kSystemS;  // steady source: no workload-induced
                                   // violations, unlike bursty RUBiS
  config.fault = FaultKind::kMemoryLeak;
  config.scheme = Scheme::kNoIntervention;
  config.seed = 8;
  config.fault1_start = 5000.0;  // neither injection ever happens
  config.fault2_start = 10000.0;
  config.run_end = 1200.0;
  const auto trace = run_scenario(config);
  EXPECT_DOUBLE_EQ(trace.slo.total_violation_time(), 0.0);
  const auto report = replay_trace(trace.store, trace.slo, ReplayConfig{});
  EXPECT_EQ(report.confirmed_alerts, 0u);
  EXPECT_EQ(report.raw_alerts, 0u);
  EXPECT_LT(report.first_confirmed, 0.0);
}

TEST(Replay, EmptyStoreThrows) {
  MetricStore store;
  SloLog slo;
  EXPECT_THROW(replay_trace(store, slo, ReplayConfig{}), CheckFailure);
}

// ------------------------------------------------ episode bundle replay

// Runs one faulted PREPARE scenario with a flight recorder attached and
// hands back the recorder's evidence. Serialized to JSONL for the
// determinism comparison; the bundles themselves for replay.
struct RecordedRun {
  obs::SpanTracer tracer;
  obs::FlightRecorder recorder;
  std::string evidence_jsonl;
};

void record_run(std::size_t num_threads, std::size_t seed,
                RecordedRun* out) {
  ScenarioConfig config;
  config.app = AppKind::kSystemS;
  config.fault = FaultKind::kMemoryLeak;
  config.scheme = Scheme::kPrepare;
  config.seed = seed;
  config.num_threads = num_threads;
  config.tracer = &out->tracer;
  config.recorder = &out->recorder;
  run_scenario(config);
  std::ostringstream os;
  out->recorder.write_evidence_jsonl(os, "replay-test");
  out->evidence_jsonl = os.str();
}

TEST(EpisodeReplay, EveryLiveBundleReplaysBitIdentically) {
  RecordedRun run;
  record_run(/*num_threads=*/1, /*seed=*/7, &run);
  ASSERT_GT(run.recorder.bundles_emitted(), 0u)
      << "the faulted run must capture at least one episode";
  for (const auto& bundle : run.recorder.bundles()) {
    const auto result = replay_episode(bundle);
    EXPECT_TRUE(result.ok)
        << bundle.trace_id << ": " << result.first_mismatch;
    EXPECT_GT(result.ticks_checked, 0u) << bundle.trace_id;
    EXPECT_EQ(result.score_mismatches, 0u) << bundle.trace_id;
    EXPECT_EQ(result.filter_mismatches, 0u) << bundle.trace_id;
    EXPECT_EQ(result.prevention_mismatches, 0u) << bundle.trace_id;
  }
}

TEST(EpisodeReplay, WhatIfUnderTheLivePolicyNeverDiverges) {
  RecordedRun run;
  record_run(/*num_threads=*/1, /*seed=*/7, &run);
  ASSERT_GT(run.recorder.bundles_emitted(), 0u);
  for (const auto& bundle : run.recorder.bundles()) {
    const auto same =
        what_if_policy(bundle, bundle.decision.prevention_mode);
    EXPECT_EQ(same.diverged, 0u)
        << bundle.trace_id << ": " << same.detail;
    EXPECT_EQ(same.compared, same.decisions.size());
  }
}

TEST(EpisodeReplay, WhatIfReportsConsistentDivergenceCounts) {
  RecordedRun run;
  record_run(/*num_threads=*/1, /*seed=*/7, &run);
  ASSERT_GT(run.recorder.bundles_emitted(), 0u);
  for (const auto& bundle : run.recorder.bundles()) {
    for (int policy = 0; policy <= 2; ++policy) {
      const auto result = what_if_policy(bundle, policy);
      EXPECT_EQ(result.policy, policy);
      std::size_t diverged = 0;
      for (const auto& [live, cf] : result.decisions)
        if (live != cf) ++diverged;
      EXPECT_EQ(result.diverged, diverged) << bundle.trace_id;
      EXPECT_EQ(result.diverged == 0, result.detail.empty())
          << bundle.trace_id << ": " << result.detail;
    }
  }
}

TEST(EpisodeReplay, BundlesAreByteIdenticalAcrossThreadCounts) {
  RecordedRun serial, fanned;
  record_run(/*num_threads=*/1, /*seed=*/7, &serial);
  record_run(/*num_threads=*/4, /*seed=*/7, &fanned);
  ASSERT_GT(serial.recorder.bundles_emitted(), 0u);
  EXPECT_EQ(serial.recorder.bundles_emitted(),
            fanned.recorder.bundles_emitted());
  EXPECT_EQ(serial.recorder.ticks_recorded(),
            fanned.recorder.ticks_recorded());
  EXPECT_EQ(serial.evidence_jsonl, fanned.evidence_jsonl);
}

TEST(EpisodeReplay, TamperedEvidenceIsCaughtNotRubberStamped) {
  RecordedRun run;
  record_run(/*num_threads=*/1, /*seed=*/7, &run);
  ASSERT_GT(run.recorder.bundles_emitted(), 0u);
  auto bundle = run.recorder.bundles()[0];
  ASSERT_FALSE(bundle.ticks.empty());
  // Flip one captured per-attribute contribution: the re-summed score
  // no longer matches the captured score bit-for-bit.
  ASSERT_TRUE(bundle.ticks[0].decomposable);
  ASSERT_FALSE(bundle.ticks[0].impacts.empty());
  bundle.ticks[0].impacts[0] += 0.125;
  const auto result = replay_episode(bundle);
  EXPECT_FALSE(result.ok);
  EXPECT_GT(result.score_mismatches, 0u);
  EXPECT_FALSE(result.first_mismatch.empty());
}

}  // namespace
}  // namespace prepare
