#include "core/replay.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/experiment.h"

namespace prepare {
namespace {

const ScenarioResult& leak_trace() {
  static const ScenarioResult trace = [] {
    ScenarioConfig config;
    config.app = AppKind::kSystemS;
    config.fault = FaultKind::kMemoryLeak;
    config.scheme = Scheme::kNoIntervention;
    config.seed = 7;
    return run_scenario(config);
  }();
  return trace;
}

TEST(Replay, ConfirmsTheFaultyVmAroundTheSecondInjection) {
  ReplayConfig config;
  const auto report = replay_trace(leak_trace().store, leak_trace().slo,
                                   config);
  ASSERT_GT(report.confirmed_alerts, 0u);
  // The first confirmed alert must target the faulty VM, after the
  // second injection started and no later than shortly after the
  // violation begins.
  double violation2 = 1e18;
  for (const auto& iv : leak_trace().slo.intervals())
    if (iv.start > 880.0) {
      violation2 = iv.start;
      break;
    }
  const ReplayAlert* first = nullptr;
  for (const auto& alert : report.alerts)
    if (alert.confirmed) {
      first = &alert;
      break;
    }
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->vm, leak_trace().faulty_vm);
  EXPECT_GE(first->time, 900.0);
  EXPECT_LE(first->time, violation2 + 15.0);
}

TEST(Replay, AlertsCarryAttribution) {
  const auto report =
      replay_trace(leak_trace().store, leak_trace().slo, ReplayConfig{});
  for (const auto& alert : report.alerts) {
    if (!alert.confirmed) continue;
    EXPECT_FALSE(alert.top_metrics.empty());
  }
}

TEST(Replay, CountersConsistent) {
  const auto report =
      replay_trace(leak_trace().store, leak_trace().slo, ReplayConfig{});
  std::size_t confirmed = 0;
  double prev = -1.0;
  for (const auto& alert : report.alerts) {
    EXPECT_GE(alert.time, prev);  // chronological (ties across VMs ok)
    prev = alert.time;
    if (alert.confirmed) ++confirmed;
  }
  EXPECT_EQ(confirmed, report.confirmed_alerts);
  EXPECT_GE(report.raw_alerts, report.confirmed_alerts > 0 ? 1u : 0u);
}

TEST(Replay, SubsetOfVms) {
  const auto report =
      replay_trace(leak_trace().store, leak_trace().slo, ReplayConfig{},
                   {leak_trace().faulty_vm});
  for (const auto& alert : report.alerts)
    EXPECT_EQ(alert.vm, leak_trace().faulty_vm);
  EXPECT_GT(report.confirmed_alerts, 0u);
}

TEST(Replay, FaultFreeTraceNeverAlerts) {
  // A trace with no fault anywhere: training has no abnormal labels, so
  // the supervised models are suppressed and the replay must be silent.
  ScenarioConfig config;
  config.app = AppKind::kSystemS;  // steady source: no workload-induced
                                   // violations, unlike bursty RUBiS
  config.fault = FaultKind::kMemoryLeak;
  config.scheme = Scheme::kNoIntervention;
  config.seed = 8;
  config.fault1_start = 5000.0;  // neither injection ever happens
  config.fault2_start = 10000.0;
  config.run_end = 1200.0;
  const auto trace = run_scenario(config);
  EXPECT_DOUBLE_EQ(trace.slo.total_violation_time(), 0.0);
  const auto report = replay_trace(trace.store, trace.slo, ReplayConfig{});
  EXPECT_EQ(report.confirmed_alerts, 0u);
  EXPECT_EQ(report.raw_alerts, 0u);
  EXPECT_LT(report.first_confirmed, 0.0);
}

TEST(Replay, EmptyStoreThrows) {
  MetricStore store;
  SloLog slo;
  EXPECT_THROW(replay_trace(store, slo, ReplayConfig{}), CheckFailure);
}

}  // namespace
}  // namespace prepare
