#include "monitor/trace_io.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "core/experiment.h"
#include "temp_path.h"

namespace prepare {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  std::string metrics_path_ = test_util::unique_temp_path("trace_metrics.csv");
  std::string slo_path_ = test_util::unique_temp_path("trace_slo.csv");
  void TearDown() override {
    std::remove(metrics_path_.c_str());
    std::remove(slo_path_.c_str());
  }
};

TEST_F(TraceIoTest, MetricStoreRoundTrips) {
  MetricStore store;
  AttributeVector v{};
  for (int i = 0; i < 20; ++i) {
    for (const char* vm : {"a", "b"}) {
      for (std::size_t a = 0; a < kAttributeCount; ++a)
        v[a] = i * 10.0 + static_cast<double>(a) + (vm[0] == 'a' ? 0 : 0.5);
      store.record(vm, i * 5.0, v);
    }
  }
  save_metric_store_csv(store, metrics_path_);
  const MetricStore loaded = load_metric_store_csv(metrics_path_);
  ASSERT_EQ(loaded.vm_names(), store.vm_names());
  for (const auto& vm : store.vm_names()) {
    ASSERT_EQ(loaded.sample_count(vm), store.sample_count(vm));
    for (std::size_t i = 0; i < store.sample_count(vm); ++i) {
      EXPECT_DOUBLE_EQ(loaded.sample_time(vm, i), store.sample_time(vm, i));
      const auto lhs = loaded.sample(vm, i);
      const auto rhs = store.sample(vm, i);
      for (std::size_t a = 0; a < kAttributeCount; ++a)
        EXPECT_NEAR(lhs[a], rhs[a], 1e-3) << vm << " sample " << i;
    }
  }
}

TEST_F(TraceIoTest, SloLogRoundTrips) {
  SloLog slo;
  for (double t = 0.0; t < 100.0; t += 1.0)
    slo.record(t, 1.0, t >= 40.0 && t < 60.0, t * 2.0);
  save_slo_log_csv(slo, slo_path_);
  const SloLog loaded = load_slo_log_csv(slo_path_);
  EXPECT_DOUBLE_EQ(loaded.total_violation_time(), 20.0);
  EXPECT_TRUE(loaded.violated_at(45.0));
  EXPECT_FALSE(loaded.violated_at(39.0));
  ASSERT_EQ(loaded.intervals().size(), 1u);
  EXPECT_DOUBLE_EQ(loaded.intervals()[0].start, 40.0);
  EXPECT_DOUBLE_EQ(loaded.intervals()[0].end, 60.0);
  EXPECT_EQ(loaded.metric_trace().size(), slo.metric_trace().size());
}

TEST_F(TraceIoTest, RecordedScenarioSurvivesRoundTrip) {
  ScenarioConfig config;
  config.scheme = Scheme::kNoIntervention;
  config.seed = 6;
  config.run_end = 400.0;  // short run keeps the test fast
  config.fault1_start = 150.0;
  config.fault_duration = 150.0;
  config.fault2_start = 310.0;
  config.train_time = 310.0;
  const auto result = run_scenario(config);
  save_metric_store_csv(result.store, metrics_path_);
  save_slo_log_csv(result.slo, slo_path_);
  const auto store = load_metric_store_csv(metrics_path_);
  const auto slo = load_slo_log_csv(slo_path_);
  EXPECT_EQ(store.vm_names().size(), 7u);
  EXPECT_NEAR(slo.total_violation_time(),
              result.slo.total_violation_time(), 1e-6);
}

TEST_F(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW(load_metric_store_csv("/nonexistent/trace.csv"),
               std::runtime_error);
  EXPECT_THROW(load_slo_log_csv("/nonexistent/slo.csv"),
               std::runtime_error);
}

TEST_F(TraceIoTest, WrongSchemaThrows) {
  {
    CsvWriter w(metrics_path_, {"time_s", "not_vm"});
    w.row(std::vector<std::string>{"0", "x"});
  }
  EXPECT_THROW(load_metric_store_csv(metrics_path_), CheckFailure);
}

TEST(CsvReader, ParsesWriterOutput) {
  const std::string path = test_util::unique_temp_path("csvreader_test.csv");
  {
    CsvWriter w(path, {"a", "b", "c"});
    w.row(std::vector<double>{1.0, 2.0, 3.0});
    w.row(std::vector<std::string>{"x", "y", "z"});
  }
  CsvReader r(path);
  EXPECT_EQ(r.column("b"), 1u);
  EXPECT_THROW(r.column("nope"), CheckFailure);
  std::vector<std::string> fields;
  ASSERT_TRUE(r.next(&fields));
  EXPECT_EQ(fields[0], "1");
  ASSERT_TRUE(r.next(&fields));
  EXPECT_EQ(fields[2], "z");
  EXPECT_FALSE(r.next(&fields));
  std::remove(path.c_str());
}

TEST(SplitCsvLine, HandlesEmptyFields) {
  const auto fields = split_csv_line("a,,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "");
}

}  // namespace
}  // namespace prepare
