"""prepare_callgraph: the libclang-free core of prepare_analyze.

Everything in this module is pure Python over plain dict/list "facts"
extracted from translation units, so the interprocedural rules can be
unit-tested (tests/callgraph_test.py) on machines without libclang —
the extraction layer in prepare_analyze.py is the only code that needs
Clang.

Facts schema (one dict per TU, JSON-serializable so the per-TU cache in
prepare_analyze.py can store it verbatim):

    functions: {fid: {name, spelling, file, line, cls, hot, confined,
                      has_body, is_lambda}}
    calls:     [[caller_fid, callee_fid, file, line], ...]
    vcalls:    [[caller_fid, decl_fid, class_id, spelling, file, line]]
    prims:     [[caller_fid, rule, detail, file, line], ...]
    classes:   {class_id: {name, confined, bases: [class_id, ...]}}
    uses:      [[caller_fid, class_id, file, line], ...]   # local objects
    workers:   [lambda_fid, ...]   # bodies handed to ThreadPool::parallel_for

`fid` is the clang USR for named functions and "lambda@file:line:col"
for lambdas. `cls` is the owning class id for methods (else None).
`prims` are calls into non-repo code classified as hot-alloc /
hot-lock / hot-io primitives; `vcalls` are virtual method calls kept
unresolved until every TU's class hierarchy has been merged. `uses`
records block-scope objects of repo class types so their (implicit)
destructor calls become edges — that is how a hot function that holds
a ScopedTimer is charged for ~ScopedTimer -> Histogram::record.

The two interprocedural rules:

    thread-confined  No function annotated (or member of a class
                     annotated) PREPARE_DRIVER_CONFINED may be
                     reachable from a parallel_for worker lambda.
    hot-alloc/-lock/-io
                     No allocation / lock-acquisition / stdio
                     primitive may be reachable from a PREPARE_HOT
                     function or a worker lambda.

Findings anchor at the offending call site, so the line-comment
suppressions (`// prepare-analyze: allow(RULE): reason`, on the line
or on a comment line directly above it) work interprocedurally: one
allow at the primitive covers every root that reaches it.
"""

import hashlib
import json
import os
import re
import sys

FACTS_VERSION = 1

SUPPRESS_RE = re.compile(
    r"//\s*prepare-analyze:\s*allow\(([a-z-]+)\)\s*(?::\s*(\S.*))?")

HOT_ANNOTATION = "prepare::hot"
CONFINED_ANNOTATION = "prepare::driver_confined"

HOT_RULES = {
    "hot-alloc": "allocation",
    "hot-lock": "lock acquisition",
    "hot-io": "I/O",
}


def new_facts():
    return {
        "version": FACTS_VERSION,
        "functions": {},
        "calls": [],
        "vcalls": [],
        "prims": [],
        "classes": {},
        "uses": [],
        "workers": [],
    }


def content_hash(data):
    """Stable hex digest of bytes (or str, encoded utf-8)."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    return hashlib.sha256(data).hexdigest()


def display(name):
    """Human name: drop the project namespace prefix."""
    if name.startswith("prepare::"):
        return name[len("prepare::"):]
    return name or "<anonymous>"


def _chain(names, limit=5):
    names = [display(n) for n in names]
    if len(names) > limit:
        names = names[:2] + ["..."] + names[-2:]
    return " -> ".join(names)


class CallGraph:
    """Merged whole-program view over every TU's facts."""

    def __init__(self):
        self.functions = {}
        self.classes = {}
        self._calls = set()
        self._vcalls = set()
        self._prims = set()
        self._uses = set()
        self.workers = set()
        self._finalized = False

    # -- construction --

    def add_facts(self, facts):
        for fid, fn in facts.get("functions", {}).items():
            cur = self.functions.get(fid)
            if cur is None:
                self.functions[fid] = dict(fn)
            else:
                # A definition wins over declarations for location; flags
                # accumulate (an annotation on any redeclaration counts).
                if fn.get("has_body") and not cur.get("has_body"):
                    cur["file"], cur["line"] = fn["file"], fn["line"]
                    cur["has_body"] = True
                cur["hot"] = cur.get("hot") or fn.get("hot")
                cur["confined"] = cur.get("confined") or fn.get("confined")
                if cur.get("cls") is None:
                    cur["cls"] = fn.get("cls")
        for cid, cls in facts.get("classes", {}).items():
            cur = self.classes.setdefault(
                cid, {"name": cls["name"], "confined": False, "bases": set()})
            cur["confined"] = cur["confined"] or cls.get("confined")
            cur["bases"].update(cls.get("bases", ()))
        self._calls.update(tuple(c) for c in facts.get("calls", ()))
        self._vcalls.update(tuple(v) for v in facts.get("vcalls", ()))
        self._prims.update(tuple(p) for p in facts.get("prims", ()))
        self._uses.update(tuple(u) for u in facts.get("uses", ()))
        self.workers.update(facts.get("workers", ()))
        self._finalized = False

    # -- resolution --

    def finalize(self):
        """Resolves virtual calls and destructor uses into plain edges."""
        # Confinement closes over inheritance: deriving from a confined
        # class cannot shed the contract.
        changed = True
        while changed:
            changed = False
            for cls in self.classes.values():
                if cls["confined"]:
                    continue
                for base in cls["bases"]:
                    if self.classes.get(base, {}).get("confined"):
                        cls["confined"] = True
                        changed = True
                        break

        derived = {}  # cid -> direct subclasses
        for cid, cls in self.classes.items():
            for base in cls["bases"]:
                derived.setdefault(base, set()).add(cid)

        def subtree(cid):
            out, work = {cid}, [cid]
            while work:
                for child in derived.get(work.pop(), ()):
                    if child not in out:
                        out.add(child)
                        work.append(child)
            return out

        methods = {}  # (cid, spelling) -> set(fid)
        for fid, fn in self.functions.items():
            if fn.get("cls"):
                methods.setdefault((fn["cls"], fn.get("spelling")),
                                   set()).add(fid)

        edges = {}

        def add_edge(caller, callee, file, line):
            edges.setdefault(caller, set()).add((callee, file, line))

        for caller, callee, file, line in self._calls:
            add_edge(caller, callee, file, line)
        # A virtual call through a base dispatches to any override in the
        # static type's subtree (plus the base implementation itself).
        for caller, decl_fid, class_id, spelling, file, line in self._vcalls:
            add_edge(caller, decl_fid, file, line)
            for cid in subtree(class_id):
                for fid in methods.get((cid, spelling), ()):
                    add_edge(caller, fid, file, line)
        # A block-scope object's destructor runs in the enclosing
        # function even though no call is written.
        for caller, class_id, file, line in self._uses:
            for (cid, spelling), fids in methods.items():
                if cid == class_id and spelling and spelling.startswith("~"):
                    for fid in fids:
                        add_edge(caller, fid, file, line)

        self.edges = {caller: sorted(targets)
                      for caller, targets in edges.items()}
        self.prims_by_fn = {}
        for caller, rule, detail, file, line in self._prims:
            self.prims_by_fn.setdefault(caller, []).append(
                (rule, detail, file, line))
        for plist in self.prims_by_fn.values():
            plist.sort()
        self._finalized = True

    # -- queries --

    def name_of(self, fid):
        fn = self.functions.get(fid)
        return fn["name"] if fn else fid

    def is_confined(self, fid):
        fn = self.functions.get(fid)
        if fn is None:
            return False
        if fn.get("confined"):
            return True
        cls = fn.get("cls")
        return bool(cls and self.classes.get(cls, {}).get("confined"))

    def enforced_workers(self):
        """Workers the contracts apply to: lambdas defined under src/.

        Test and bench drivers also hand lambdas to parallel_for, and
        those legitimately allocate or poke EventLog — the confinement
        and hot-path proofs police production workers only. (Fixtures
        opt in by scoping themselves `as=src/...`.)
        """
        return {fid for fid in self.workers
                if self.functions.get(fid, {}).get("file", "")
                .startswith("src/")}

    def hot_roots(self):
        roots = set(self.enforced_workers())
        roots.update(fid for fid, fn in self.functions.items()
                     if fn.get("hot"))
        return roots

    def _sorted_fids(self, fids):
        return sorted(fids, key=lambda f: (self.name_of(f), f))

    def _path(self, parents, fid):
        path = [fid]
        while parents.get(path[-1]) is not None:
            path.append(parents[path[-1]])
        return [self.name_of(f) for f in reversed(path)]

    def confinement_findings(self):
        """Calls into driver-confined code reachable from a worker."""
        assert self._finalized
        findings = []
        seen_sites = set()
        for root in self._sorted_fids(self.enforced_workers()):
            parents = {root: None}
            work = [root]
            while work:
                u = work.pop(0)
                for v, file, line in self.edges.get(u, ()):
                    if self.is_confined(v):
                        site = (file, line, v)
                        if site in seen_sites:
                            continue
                        seen_sites.add(site)
                        findings.append({
                            "rule": "thread-confined",
                            "file": file,
                            "line": line,
                            "message":
                                "'%s' is driver-confined but reachable "
                                "from the parallel_for worker at %s: %s"
                                % (display(self.name_of(v)),
                                   display(self.name_of(root)),
                                   _chain(self._path(parents, u)
                                          + [self.name_of(v)])),
                        })
                        continue  # flag the boundary, don't walk inside
                    if v not in parents:
                        parents[v] = u
                        work.append(v)
        findings.sort(key=lambda f: (f["file"], f["line"], f["message"]))
        return findings

    def hot_findings(self):
        """Alloc/lock/IO primitives reachable from hot roots."""
        assert self._finalized
        findings = []
        seen_sites = set()
        for root in self._sorted_fids(self.hot_roots()):
            parents = {root: None}
            work = [root]
            while work:
                u = work.pop(0)
                for rule, detail, file, line in self.prims_by_fn.get(u, ()):
                    site = (file, line, rule)
                    if site in seen_sites:
                        continue
                    seen_sites.add(site)
                    if u == root:
                        chain = "in hot function '%s'" % display(
                            self.name_of(u))
                    else:
                        chain = "reached from hot '%s': %s" % (
                            display(self.name_of(root)),
                            _chain(self._path(parents, u)))
                    findings.append({
                        "rule": rule,
                        "file": file,
                        "line": line,
                        "message": "%s on the hot path: %s (%s)"
                                   % (HOT_RULES.get(rule, rule), detail,
                                      chain),
                    })
                for v, _file, _line in self.edges.get(u, ()):
                    if v not in parents:
                        parents[v] = u
                        work.append(v)
        findings.sort(key=lambda f: (f["file"], f["line"], f["message"]))
        return findings


# --- suppressions ------------------------------------------------------------


def scan_suppressions(lines):
    """All allow() comments in a file: [(lineno, rule, reason-or-None)]."""
    out = []
    for i, text in enumerate(lines, start=1):
        m = SUPPRESS_RE.search(text)
        if m:
            out.append((i, m.group(1), m.group(2)))
    return out


def find_suppression(lines, lineno, rule):
    """The allow(rule) governing `lineno`, as (comment_lineno, reason).

    A suppression matches on the flagged line itself, or on a
    comment-only line directly above it. Returns None if absent.
    """
    def match(n):
        if not (0 < n <= len(lines)):
            return None
        m = SUPPRESS_RE.search(lines[n - 1])
        if m and m.group(1) == rule:
            return (n, m.group(2))
        return None

    hit = match(lineno)
    if hit:
        return hit
    if lineno - 1 > 0 and lines[lineno - 2].lstrip().startswith("//"):
        return match(lineno - 1)
    return None


class SourceCache:
    def __init__(self):
        self._lines = {}

    def lines(self, path):
        if path not in self._lines:
            try:
                with open(path, encoding="utf-8", errors="replace") as f:
                    self._lines[path] = f.readlines()
            except OSError:
                self._lines[path] = []
        return self._lines[path]


class Diagnostics:
    """Dedups across TUs, applies suppressions, tracks rule counts.

    `used` records every (real_path, comment_line) suppression that
    matched a diagnostic, so the unused-suppression audit can flag the
    leftovers.
    """

    def __init__(self):
        self._seen = set()
        self.items = []  # (file, line, rule, message)
        self.found = {}       # rule -> diagnostics kept
        self.suppressed = {}  # rule -> diagnostics suppressed with reason
        self.used = set()     # (real_path, line) of consumed allow comments
        self.sources = SourceCache()

    def add(self, path, line, rule, message, real_path=None):
        key = (path, line, rule)
        if key in self._seen:
            return
        self._seen.add(key)
        real = os.path.abspath(real_path or path)
        lines = self.sources.lines(real)
        hit = find_suppression(lines, line, rule)
        if hit:
            comment_line, reason = hit
            self.used.add((real, comment_line))
            if reason:
                self.suppressed[rule] = self.suppressed.get(rule, 0) + 1
                return
            message = ("allow(%s) needs a justification: "
                       "`// prepare-analyze: allow(%s): reason`"
                       % (rule, rule))
            rule = "suppression"
        self.found[rule] = self.found.get(rule, 0) + 1
        self.items.append((path, line, rule, message))

    def unused_suppressions(self, files):
        """allow() comments in `files` that never matched a diagnostic.

        `files` maps diagnostic (scoped) paths to real filesystem paths.
        Returns (path, line, rule, message) tuples, sorted.
        """
        out = []
        for scoped in sorted(files):
            real = os.path.abspath(files[scoped])
            for lineno, rule, _reason in scan_suppressions(
                    self.sources.lines(real)):
                if (real, lineno) in self.used:
                    continue
                out.append((scoped, lineno, "unused-suppression",
                            "allow(%s) matches no %s diagnostic on this "
                            "or the next line; delete it" % (rule, rule)))
        return out

    def report(self, out=sys.stdout):
        for path, line, rule, message in sorted(self.items):
            out.write("%s:%d: [%s] %s\n" % (path, line, rule, message))

    def summary_lines(self):
        """Per-rule `rule / kept / suppressed` table rows."""
        rules = sorted(set(self.found) | set(self.suppressed))
        if not rules:
            return []
        width = max(len(r) for r in rules)
        rows = ["  %-*s  %5s  %10s" % (width, "rule", "found", "suppressed")]
        for rule in rules:
            rows.append("  %-*s  %5d  %10d"
                        % (width, rule, self.found.get(rule, 0),
                           self.suppressed.get(rule, 0)))
        return rows


# --- machine-readable output -------------------------------------------------

RULE_HELP = {
    "layering": "Includes must follow the src/ dependency DAG.",
    "determinism": "No unordered iteration near diffed output; no "
                   "wall-clock or libc randomness outside sim/clock.",
    "strong-type": "Public API scalars with id/index/probability/duration "
                   "roles must use the strong types from common/units.h.",
    "mutex-type": "Only prepare::Mutex / prepare::MutexLock may lock.",
    "suppression": "allow() comments must carry a justification.",
    "unused-suppression": "allow() comments must match a diagnostic.",
    "thread-confined": "PREPARE_DRIVER_CONFINED code must be unreachable "
                       "from parallel_for worker lambdas.",
    "hot-alloc": "PREPARE_HOT code must not allocate, transitively.",
    "hot-lock": "PREPARE_HOT code must not take locks, transitively.",
    "hot-io": "PREPARE_HOT code must not perform I/O, transitively.",
}


def to_json(items, summary_found, summary_suppressed):
    return {
        "version": 2,
        "findings": [
            {"rule": rule, "file": path, "line": line, "message": message}
            for path, line, rule, message in sorted(items)
        ],
        "summary": {
            rule: {"found": summary_found.get(rule, 0),
                   "suppressed": summary_suppressed.get(rule, 0)}
            for rule in sorted(set(summary_found) | set(summary_suppressed))
        },
    }


def to_sarif(items):
    """SARIF 2.1.0 for GitHub code scanning upload."""
    rules_seen = sorted(set(rule for _, _, rule, _ in items))
    results = []
    for path, line, rule, message in sorted(items):
        results.append({
            "ruleId": rule,
            "level": "error",
            "message": {"text": message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": path.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": line},
                },
            }],
        })
    return {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                   "master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "prepare_analyze",
                    "informationUri":
                        "https://github.com/prepare/prepare"
                        "/blob/main/tools/prepare_analyze.py",
                    "rules": [
                        {"id": rule,
                         "shortDescription": {
                             "text": RULE_HELP.get(rule, rule)}}
                        for rule in rules_seen
                    ],
                },
            },
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "results": results,
        }],
    }


def dump_json(obj, path):
    with open(path, "w", encoding="utf-8") as f:
        json.dump(obj, f, indent=2, sort_keys=True)
        f.write("\n")
