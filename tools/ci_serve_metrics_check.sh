#!/usr/bin/env bash
# CI smoke test for the live metrics endpoint: run a fault-injection
# scenario with --serve-metrics, scrape /metrics and /healthz while the
# post-run hold keeps the endpoint up, and validate the exposition with
# tools/check_prom_text.py. Usage:
#
#   tools/ci_serve_metrics_check.sh BUILD_DIR
#
# Exits non-zero if the endpoint never comes up, a scrape fails, the
# exposition is malformed, or the CLI exits uncleanly.
set -euo pipefail

build_dir=${1:?usage: ci_serve_metrics_check.sh BUILD_DIR}
repo_root=$(cd "$(dirname "$0")/.." && pwd)
cli="$build_dir/examples/prepare_cli"
[[ -x "$cli" ]] || { echo "missing $cli (build first)" >&2; exit 1; }

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
log="$workdir/cli.log"

"$cli" --fault memory_leak --scheme prepare --seed 11 \
       --serve-metrics 0 --serve-hold-s 30 >"$log" 2>&1 &
cli_pid=$!

# The CLI prints the resolved port once the listener is live (port 0 =
# kernel-assigned). Poll the log rather than sleeping a fixed amount.
port=""
for _ in $(seq 1 100); do
  port=$(sed -n 's/^serving metrics on port \([0-9]*\)$/\1/p' "$log" || true)
  [[ -n "$port" ]] && break
  if ! kill -0 "$cli_pid" 2>/dev/null; then
    echo "prepare_cli exited before serving metrics:" >&2
    cat "$log" >&2
    exit 1
  fi
  sleep 0.1
done
[[ -n "$port" ]] || { echo "endpoint never came up:" >&2; cat "$log" >&2; exit 1; }
echo "metrics endpoint live on port $port"

curl -fsS "http://127.0.0.1:$port/healthz" | grep -qx "ok" \
  || { echo "/healthz did not answer ok" >&2; exit 1; }
curl -fsS "http://127.0.0.1:$port/metrics" >"$workdir/metrics.txt"
python3 "$repo_root/tools/check_prom_text.py" "$workdir/metrics.txt"

# The scrape must carry the outcome ledger, pipeline counters, and the
# model-introspection calibration family.
for family in prepare_alert_episodes_total prepare_alert_outcome_prevented_total \
              prepare_alert_precision prepare_model_calibration_brier \
              prepare_model_calibration_samples_total; do
  grep -q "^$family\b" "$workdir/metrics.txt" \
    || { echo "scrape is missing $family" >&2; exit 1; }
done

# SIGTERM ends the hold early; the CLI must still exit 0.
kill -TERM "$cli_pid"
wait "$cli_pid" || { echo "prepare_cli exited non-zero after SIGTERM" >&2; exit 1; }
echo "serve-metrics check passed"
