#!/usr/bin/env python3
"""Validator for the machine-readable bench reports (BENCH_*.json).

Every wired bench emits one JSON object (bench/bench_util.h
write_bench_json, schema "prepare-bench-v1"):

  {"schema": "prepare-bench-v1", "bench": NAME,
   "config": {<knob>: NUMBER, ...},
   "vm_ticks": N, "elapsed_s": S, "rate_vm_ticks_per_sec": R,
   "stages": [{"stage": NAME, "count": N,
               "p50_s": ..., "p90_s": ..., "p99_s": ...}, ...]}

Checked: required fields present with the right types, schema tag
matches, vm_ticks > 0, elapsed_s > 0, the reported rate is consistent
with vm_ticks / elapsed_s (within 5% — the two reads of the meter are
moments apart), stage names are unique, stage counts are positive, and
stage percentiles are ordered (0 <= p50 <= p90 <= p99; null means
unavailable and is rejected here — a stage that recorded nothing should
not be listed).

Usage: check_bench_json.py FILE.json [FILE.json ...]
                           [--require-stage STAGE]
                           [--compare BASELINE_DIR]
                           [--max-regress FRAC]

--require-stage NAME (repeatable) demands that a stage row named NAME is
present in every file — CI uses it to prove the hot pipeline stages were
actually profiled, not silently skipped.

--compare BASELINE_DIR compares each file's rate_vm_ticks_per_sec
against the committed baseline report of the same file name in
BASELINE_DIR (bench_results/ in the repo) and fails when the fresh rate
regresses by more than --max-regress (default 0.30, i.e. >30% slower
than the baseline). A missing baseline for a checked file is a
violation — commit one with PREPARE_BENCH_OUT_DIR. Faster-than-baseline
runs always pass; the gate only guards against slowdowns.

Exits 0 when every file is valid, 1 with one "FILE: message" per
violation. Missing files are violations (loud-fail, same contract as
tools/lint.sh): a bench that did not produce its report is a broken
bench, not a skippable one.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

SCHEMA = "prepare-bench-v1"


def _is_num(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate(path: Path, require_stages: list[str]) -> list[str]:
    errors: list[str] = []

    def err(message: str) -> None:
        errors.append(f"{path}: {message}")

    if not path.is_file():
        return [f"{path}: missing bench report"]
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable: {exc}"]
    if not isinstance(doc, dict):
        return [f"{path}: top level is not a JSON object"]

    if doc.get("schema") != SCHEMA:
        err(f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        err("bench must be a non-empty string")

    config = doc.get("config")
    if not isinstance(config, dict):
        err("config must be an object")
    else:
        for key, value in config.items():
            if not _is_num(value):
                err(f"config.{key} must be a number, got {value!r}")

    vm_ticks = doc.get("vm_ticks")
    elapsed = doc.get("elapsed_s")
    rate = doc.get("rate_vm_ticks_per_sec")
    if not isinstance(vm_ticks, int) or vm_ticks <= 0:
        err(f"vm_ticks must be a positive integer, got {vm_ticks!r}")
    if not _is_num(elapsed) or elapsed <= 0:
        err(f"elapsed_s must be a positive number, got {elapsed!r}")
    if not _is_num(rate) or rate <= 0:
        err(f"rate_vm_ticks_per_sec must be a positive number, got {rate!r}")
    if not errors:
        implied = vm_ticks / elapsed
        if abs(rate - implied) > 0.05 * implied:
            err(f"rate {rate:.2f} inconsistent with vm_ticks/elapsed_s "
                f"{implied:.2f}")

    stages = doc.get("stages")
    if not isinstance(stages, list):
        err("stages must be a list")
        stages = []
    seen: set[str] = set()
    for i, row in enumerate(stages):
        where = f"stages[{i}]"
        if not isinstance(row, dict):
            err(f"{where} is not an object")
            continue
        name = row.get("stage")
        if not isinstance(name, str) or not name:
            err(f"{where}.stage must be a non-empty string")
            name = f"<{i}>"
        if name in seen:
            err(f"{where}: duplicate stage {name!r}")
        seen.add(name)
        count = row.get("count")
        if not isinstance(count, int) or count <= 0:
            err(f"{where} ({name}): count must be a positive integer, "
                f"got {count!r}")
        quantiles = []
        for key in ("p50_s", "p90_s", "p99_s"):
            value = row.get(key)
            if not _is_num(value) or value < 0:
                err(f"{where} ({name}): {key} must be a non-negative "
                    f"number, got {value!r}")
                value = None
            quantiles.append(value)
        if None not in quantiles and not (
                quantiles[0] <= quantiles[1] <= quantiles[2]):
            err(f"{where} ({name}): percentiles out of order: "
                f"p50={quantiles[0]} p90={quantiles[1]} p99={quantiles[2]}")
    for required in require_stages:
        if required not in seen:
            err(f"required stage {required!r} not present "
                f"(have: {sorted(seen)})")
    return errors


def compare_to_baseline(path: Path, baseline_dir: Path,
                        max_regress: float) -> list[str]:
    """Throughput-regression gate against a committed baseline report."""
    baseline_path = baseline_dir / path.name
    if not baseline_path.is_file():
        return [f"{path}: no baseline {baseline_path} to compare against"]
    try:
        fresh = json.loads(path.read_text())
        baseline = json.loads(baseline_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable during compare: {exc}"]
    fresh_rate = fresh.get("rate_vm_ticks_per_sec")
    base_rate = baseline.get("rate_vm_ticks_per_sec")
    if not _is_num(fresh_rate) or not _is_num(base_rate) or base_rate <= 0:
        return [f"{path}: cannot compare rates "
                f"(fresh {fresh_rate!r}, baseline {base_rate!r})"]
    floor = base_rate * (1.0 - max_regress)
    if fresh_rate < floor:
        return [f"{path}: rate {fresh_rate:.0f} VM-ticks/s regressed "
                f">{max_regress:.0%} below baseline {base_rate:.0f} "
                f"(floor {floor:.0f})"]
    print(f"check_bench_json: {path.name} rate {fresh_rate:.0f} vs "
          f"baseline {base_rate:.0f} VM-ticks/s "
          f"({fresh_rate / base_rate - 1.0:+.1%})")
    return []


def main(argv: list[str]) -> int:
    files: list[Path] = []
    require_stages: list[str] = []
    baseline_dir: Path | None = None
    max_regress = 0.30
    args = iter(argv[1:])
    for arg in args:
        if arg == "--require-stage":
            value = next(args, None)
            if value is None:
                print("check_bench_json.py: --require-stage needs a value",
                      file=sys.stderr)
                return 2
            require_stages.append(value)
        elif arg == "--compare":
            value = next(args, None)
            if value is None:
                print("check_bench_json.py: --compare needs a directory",
                      file=sys.stderr)
                return 2
            baseline_dir = Path(value)
        elif arg == "--max-regress":
            value = next(args, None)
            if value is None:
                print("check_bench_json.py: --max-regress needs a value",
                      file=sys.stderr)
                return 2
            max_regress = float(value)
            if not 0.0 < max_regress < 1.0:
                print("check_bench_json.py: --max-regress must be in (0,1)",
                      file=sys.stderr)
                return 2
        elif arg.startswith("-"):
            print(f"check_bench_json.py: unknown flag {arg}", file=sys.stderr)
            print(__doc__, file=sys.stderr)
            return 2
        else:
            files.append(Path(arg))
    if not files:
        print("usage: check_bench_json.py FILE.json [...] "
              "[--require-stage STAGE] [--compare BASELINE_DIR] "
              "[--max-regress FRAC]", file=sys.stderr)
        return 2

    errors: list[str] = []
    for path in files:
        errors.extend(validate(path, require_stages))
        if baseline_dir is not None:
            errors.extend(compare_to_baseline(path, baseline_dir,
                                              max_regress))
    for message in errors:
        print(message, file=sys.stderr)
    if not errors:
        print(f"check_bench_json: {len(files)} report(s) OK")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
