#!/usr/bin/env python3
"""Repo-specific static lint for the PREPARE codebase.

Enforced rules (each maps to a real bug class we care about):

  R1  no-raw-rand      rand()/srand()/std::rand()/time(NULL)-style seeding
                       outside src/common/rng.h. Every stochastic draw must
                       go through prepare::Rng so runs stay reproducible
                       from their seed.
  R2  no-using-std     `using namespace std;` in a header leaks into every
                       includer; banned in .h files.
  R3  own-header-first every src/**/foo.cpp whose sibling foo.h exists must
                       include "its-dir/foo.h" as the FIRST include, so the
                       header is proven self-contained by every build.
  R4  pragma-once      every header starts its preprocessor life with
                       `#pragma once` (first directive line).
  R5  (retired)        annotated-mutex moved to tools/prepare_analyze.py
                       rule `mutex-type`: the AST pass matches canonical
                       types, so a typedef of std::mutex cannot dodge it
                       the way it could dodge this file's regex.
  R6  no-thread-detach std::thread::detach() leaks a running thread past
                       the owner's lifetime; every thread in this tree is
                       joined (see ThreadPool).
  R7  no-sleep-sync    sleep_for/sleep_until inside tests/ — sleeping to
                       "wait for" another thread is a flaky race, not a
                       synchronisation; use joins/latches/condvars.
  R8  locked-requires  a `..._locked(` helper declared in a header must
                       carry PREPARE_REQUIRES(mu) so the analysis checks
                       its callers actually hold the lock.

Usage: check_invariants.py [PATHS...]   (default: src)
Exits 0 when clean, 1 with one "path:line: [rule] message" per violation.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

RAW_RAND_RE = re.compile(
    r"(?<![\w:])(?:std::)?(?:rand|srand|rand_r|drand48)\s*\("
    r"|time\s*\(\s*(?:NULL|0|nullptr)\s*\)"
)
USING_STD_RE = re.compile(r"^\s*using\s+namespace\s+std\s*;")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+[<"]([^>"]+)[>"]')
DIRECTIVE_RE = re.compile(r"^\s*#\s*(\w+)")
COMMENT_LINE_RE = re.compile(r"^\s*(//|\*|/\*)")

RAW_RAND_ALLOWED_SUFFIX = "src/common/rng.h"

THREAD_DETACH_RE = re.compile(r"\.\s*detach\s*\(")
SLEEP_SYNC_RE = re.compile(r"\bsleep_(?:for|until)\s*\(")
LOCKED_HELPER_RE = re.compile(r"\b\w+_locked\s*\(")
# A `_locked(` occurrence is a *call* (not a declaration) when an
# expression context immediately precedes it: return / assignment /
# member access / nesting inside another call's argument list.
LOCKED_CALL_PREFIX_RE = re.compile(r"(?:\breturn|=|\.|->|\(|,)\s*$")


def strip_line_comment(line: str) -> str:
    """Removes // comments and string literals (good enough for a lint)."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    line = re.sub(r"//.*$", "", line)
    return line


def src_root_of(path: Path) -> Path | None:
    """Nearest ancestor directory named `src`, or None."""
    for parent in path.parents:
        if parent.name == "src":
            return parent
    return None


def check_file(path: Path) -> list[tuple[Path, int, str, str]]:
    try:
        rel = path.relative_to(REPO_ROOT)
    except ValueError:
        rel = path
    text = path.read_text(encoding="utf-8", errors="replace")
    lines = text.splitlines()
    findings = []

    in_block_comment = False
    first_include: tuple[int, str] | None = None
    first_directive: str | None = None
    for lineno, raw in enumerate(lines, start=1):
        line = raw
        if in_block_comment:
            if "*/" in line:
                line = line.split("*/", 1)[1]
                in_block_comment = False
            else:
                continue
        if "/*" in line and "*/" not in line.split("/*", 1)[1]:
            line = line.split("/*", 1)[0]
            in_block_comment = True
        # Match includes on the unstripped line: the string stripper would
        # blank out quoted include paths.
        if (m := INCLUDE_RE.match(line)) and first_include is None:
            first_include = (lineno, m.group(1))

        code = strip_line_comment(line)

        if m := DIRECTIVE_RE.match(code):
            if first_directive is None:
                first_directive = m.group(1)
                if m.group(1) == "pragma" and "once" not in code:
                    first_directive = "pragma-other"

        if (not str(path).endswith(RAW_RAND_ALLOWED_SUFFIX)
                and RAW_RAND_RE.search(code)):
            findings.append(
                (rel, lineno, "no-raw-rand",
                 "raw rand()/time(NULL)-style call; draw from "
                 "prepare::Rng (src/common/rng.h) instead"))

        if path.suffix == ".h" and USING_STD_RE.match(code):
            findings.append(
                (rel, lineno, "no-using-std",
                 "`using namespace std;` in a header pollutes every "
                 "includer"))

        if THREAD_DETACH_RE.search(code):
            findings.append(
                (rel, lineno, "no-thread-detach",
                 "detached threads outlive their owner's state; keep the "
                 "handle and join() (see prepare::ThreadPool)"))

        if "tests/" in str(rel).replace("\\", "/") and \
                SLEEP_SYNC_RE.search(code):
            findings.append(
                (rel, lineno, "no-sleep-sync",
                 "sleeping is not synchronisation — a slow machine turns "
                 "this test flaky; join the thread or wait on a condition"))

        if path.suffix == ".h" and (m := LOCKED_HELPER_RE.search(code)):
            prefix = code[:m.start()]
            if not LOCKED_CALL_PREFIX_RE.search(prefix):
                # Declaration: the annotation must appear before the
                # declarator ends (same line or a continuation line).
                decl = code
                probe = lineno
                while ";" not in decl and "{" not in decl and \
                        probe < len(lines):
                    decl += " " + strip_line_comment(lines[probe])
                    probe += 1
                if "PREPARE_REQUIRES" not in decl:
                    findings.append(
                        (rel, lineno, "locked-requires",
                         f"`{m.group(0).rstrip('(').rstrip()}` helper must "
                         "declare PREPARE_REQUIRES(mu) so callers are "
                         "checked to hold the lock"))

    if path.suffix == ".h":
        has_pragma_once = first_directive == "pragma" and "#pragma once" in text
        if not has_pragma_once:
            findings.append(
                (rel, 1, "pragma-once",
                 "header must start with `#pragma once` before any other "
                 "preprocessor directive"))

    src_root = src_root_of(path)
    if path.suffix == ".cpp" and src_root is not None:
        own_header = path.with_suffix(".h")
        if own_header.exists():
            expected = str(own_header.relative_to(src_root))
            if first_include is None or first_include[1] != expected:
                got = first_include[1] if first_include else "none"
                findings.append(
                    (rel, first_include[0] if first_include else 1,
                     "own-header-first",
                     f'first include must be "{expected}" (got {got}) so '
                     "the header stays self-contained"))

    return findings


def main(argv: list[str]) -> int:
    roots = [Path(a) for a in argv[1:]] or [REPO_ROOT / "src"]
    files: list[Path] = []
    for root in roots:
        root = root if root.is_absolute() else REPO_ROOT / root
        if root.is_file():
            files.append(root)
        else:
            files.extend(sorted(root.rglob("*.h")))
            files.extend(sorted(root.rglob("*.cpp")))
    # tests/analyze_fixtures holds deliberately-bad inputs for
    # prepare_analyze.py's self-test; linting them defeats the point.
    files = [f for f in files
             if "analyze_fixtures" not in f.as_posix().split("/")]

    all_findings = []
    for f in files:
        all_findings.extend(check_file(f))

    for rel, lineno, rule, msg in all_findings:
        print(f"{rel}:{lineno}: [{rule}] {msg}")
    if all_findings:
        print(f"check_invariants: {len(all_findings)} violation(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"check_invariants: OK ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
