#!/usr/bin/env python3
"""Render "why PREPARE acted" timelines from flight-recorder evidence.

Reads a schema-v4 trace (src/obs/trace_export.h) written by
`prepare_cli --record-episodes --obs-out FILE.jsonl` and, for every
episode bundle the flight recorder flushed (src/obs/flight_recorder.h),
prints a human-readable forensic timeline:

  1. the bundle header — VM, open/close times, outcome, decision
     config (k-of-W, alert threshold, prevention policy);
  2. the tick-by-tick evidence — pre-context then episode ticks, each
     with the classifier score, abnormal / raw-alert / confirmed flags,
     and the top contributing attribute with its log-odds impact L_i
     (Eq. 1 decomposition), so the alert's build-up is visible;
  3. the diagnosis — the full RCA attribution ranking captured when
     cause inference fired;
  4. the prevention attempts — phase (initial / companion / fallback),
     target attribute, feasibility flags, and the applied action;
  5. any counterfactual annotations recorded by `--what-if`.

Usage: prepare_explain.py FILE.jsonl [--trace-id ID] [--max-ticks N]

--trace-id limits output to one episode; --max-ticks elides the middle
of long tick timelines (default 40, 0 = no limit). Exits 0 on success,
1 when the trace is unreadable or has no episode bundles (a forensics
run that captured nothing is a broken run — same loud-fail contract as
the other tools).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def _num(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def load_evidence(path: Path) -> list[dict]:
    records = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            print(f"{path}:{lineno}: invalid JSON: {exc}", file=sys.stderr)
            continue
        if isinstance(obj, dict) and obj.get("record") == "episode_evidence":
            records.append(obj)
    return records


def attr_names(bundle: dict) -> list[str]:
    names = []
    i = 0
    while f"attr{i}" in bundle:
        names.append(str(bundle[f"attr{i}"]))
        i += 1
    return names


def top_impact(tick: dict, names: list[str]) -> tuple[str, float]:
    """(attribute name, L_i) of the largest per-attribute impact."""
    best_attr, best = "-", float("-inf")
    for i, name in enumerate(names):
        v = tick.get(f"impact{i}")
        if _num(v) and v > best:
            best_attr, best = name, float(v)
    if best == float("-inf"):
        return "-", 0.0
    return best_attr, best


def flag(tick: dict, field: str, mark: str) -> str:
    return mark if tick.get(field) == 1 else "."


def policy_name(mode: object) -> str:
    return {0: "scaling", 1: "migration", 2: "auto"}.get(mode, str(mode))


def print_tick(tick: dict, names: list[str]) -> None:
    attr, impact = top_impact(tick, names)
    score = tick.get("score")
    flags = (flag(tick, "abnormal", "A") + flag(tick, "raw_alert", "R")
             + flag(tick, "confirmed", "C"))
    print(f"    {tick.get('phase', '?'):>7}  t={tick.get('t'):>8} "
          f" score={score:+9.3f}  [{flags}]  top={attr} "
          f"(L={impact:+.3f})" if _num(score) else
          f"    {tick.get('phase', '?'):>7}  t={tick.get('t'):>8}  [??]")


def print_diagnosis(diag: dict) -> None:
    count = diag.get("count", 0)
    parts = []
    for r in range(1, (count if isinstance(count, int) else 0) + 1):
        name = diag.get(f"rank{r}_attr", "?")
        impact = diag.get(f"rank{r}_impact")
        parts.append(f"{name}({impact:+.3f})" if _num(impact) else str(name))
    print(f"  diagnosis at t={diag.get('t')}: {' > '.join(parts) or '(none)'}")


def print_prevention(p: dict) -> None:
    feas = (f"scale={'y' if p.get('scale_possible') == 1 else 'n'} "
            f"migrate={'y' if p.get('migrate_possible') == 1 else 'n'}")
    print(f"  prevention at t={p.get('t')}: {p.get('phase')} "
          f"on {p.get('attribute')} ({p.get('metric_kind')}; {feas}; "
          f"policy={policy_name(p.get('mode'))}) -> {p.get('applied')}")


def print_counterfactual(c: dict) -> None:
    line = (f"  what-if policy={policy_name(c.get('policy'))}: "
            f"{c.get('diverged')}/{c.get('compared')} decisions diverge")
    detail = c.get("detail")
    if detail:
        line += f" (first: {detail})"
    print(line)


def print_bundle(bundle: dict, members: list[dict], max_ticks: int) -> None:
    names = attr_names(bundle)
    print(f"episode {bundle.get('trace_id')} on {bundle.get('vm')}: "
          f"t=[{bundle.get('t_open')}, {bundle.get('t_close')}] "
          f"outcome={bundle.get('outcome')}")
    print(f"  config: {bundle.get('filter_k')}-of-{bundle.get('filter_w')} "
          f"filter, alert threshold {bundle.get('alert_min_top_impact')}, "
          f"policy={policy_name(bundle.get('prevention_mode'))}, "
          f"lookahead {bundle.get('lookahead_s')}s")
    truncated = bundle.get("truncated_ticks", 0)
    header = (f"  evidence: {bundle.get('pre_ticks')} pre-context + "
              f"{bundle.get('ticks', 0) - (bundle.get('pre_ticks') or 0)} "
              f"episode ticks")
    if _num(truncated) and truncated > 0:
        header += f" ({truncated} older episode ticks truncated)"
    print(header)

    ticks = sorted((m for m in members if m.get("kind") == "tick"),
                   key=lambda m: m.get("seq", 0))
    if max_ticks > 0 and len(ticks) > max_ticks:
        head, tail = ticks[:max_ticks // 2], ticks[-(max_ticks // 2):]
        for t in head:
            print_tick(t, names)
        print(f"    ... {len(ticks) - len(head) - len(tail)} "
              "ticks elided ...")
        for t in tail:
            print_tick(t, names)
    else:
        for t in ticks:
            print_tick(t, names)

    for diag in (m for m in members if m.get("kind") == "diagnosis"):
        print_diagnosis(diag)
    for p in (m for m in members if m.get("kind") == "prevention"):
        print_prevention(p)
    for c in (m for m in members if m.get("kind") == "counterfactual"):
        print_counterfactual(c)


def main(argv: list[str]) -> int:
    args, trace_id, max_ticks = [], None, 40
    it = iter(argv[1:])
    for a in it:
        if a == "--trace-id":
            trace_id = next(it, None)
        elif a == "--max-ticks":
            raw = next(it, None)
            try:
                max_ticks = int(raw)
            except (TypeError, ValueError):
                print(f"--max-ticks: not an integer: {raw!r}",
                      file=sys.stderr)
                return 2
        else:
            args.append(a)
    if len(args) != 1:
        print(f"usage: {argv[0]} FILE.jsonl [--trace-id ID] "
              "[--max-ticks N]", file=sys.stderr)
        return 2
    path = Path(args[0])
    if not path.is_file():
        print(f"{path}: no such file", file=sys.stderr)
        return 1

    evidence = load_evidence(path)
    bundles = [r for r in evidence if r.get("kind") == "bundle"]
    if trace_id is not None:
        bundles = [b for b in bundles if b.get("trace_id") == trace_id]
    if not bundles:
        ids = sorted({str(r.get("trace_id")) for r in evidence
                      if r.get("kind") == "bundle"})
        if trace_id is not None and ids:
            print(f"{path}: no bundle with trace_id {trace_id!r} "
                  f"(available: {', '.join(ids)})", file=sys.stderr)
        else:
            print(f"{path}: no episode_evidence bundles (run prepare_cli "
                  "with --record-episodes --obs-out)", file=sys.stderr)
        return 1

    for i, bundle in enumerate(bundles):
        if i > 0:
            print()
        members = [r for r in evidence
                   if r.get("trace_id") == bundle.get("trace_id")
                   and r.get("kind") != "bundle"]
        print_bundle(bundle, members, max_ticks)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except BrokenPipeError:
        sys.exit(0)  # output piped into head; not an error
