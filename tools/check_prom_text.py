#!/usr/bin/env python3
"""Validator for Prometheus text exposition format 0.0.4.

Checks the output of the /metrics endpoint (src/obs/prom_export.cpp):

  - every line is a `# TYPE`/`# HELP` comment or a sample
    `name[{labels}] value [timestamp]`
  - metric names match [a-zA-Z_:][a-zA-Z0-9_:]* and label names
    [a-zA-Z_][a-zA-Z0-9_]*
  - each family is TYPE-declared exactly once, before its samples, with
    a known type (counter/gauge/summary/histogram/untyped)
  - every sample belongs to a declared family (summary samples may be
    the family name with a quantile label, or <family>_sum/_count)
  - counter families end in _total
  - summary families carry their quantile samples plus _sum and _count
  - values parse as Go floats (NaN/+Inf/-Inf literals allowed)

Usage: check_prom_text.py FILE   (or `-` for stdin)

Exits 0 when valid, 1 with one "line N: message" per violation.
"""

from __future__ import annotations

import re
import sys

METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
LABEL_NAME = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")
# Label value: escaped \" \\ \n only; no raw " or newline.
LABELS = re.compile(r"\{\s*(?:[a-zA-Z_][a-zA-Z0-9_]*\s*=\s*"
                    r'"(?:[^"\\\n]|\\[\\"n])*"\s*(?:,\s*)?)*\}\Z')
VALUE = re.compile(r"[+-]?(?:\d+(?:\.\d*)?|\.\d+)(?:[eE][+-]?\d+)?\Z")
TYPES = {"counter", "gauge", "summary", "histogram", "untyped"}


def parse_value(token: str) -> bool:
    return token in ("NaN", "+Inf", "-Inf", "Inf") or bool(VALUE.match(token))


def base_family(name: str, families: dict[str, str]) -> str | None:
    """Resolves a sample name to its declared family, if any."""
    if name in families:
        return name
    for suffix in ("_sum", "_count", "_bucket"):
        if name.endswith(suffix):
            stem = name[: -len(suffix)]
            if families.get(stem) in ("summary", "histogram"):
                return stem
    return None


def validate(lines: list[str]) -> list[str]:
    errors: list[str] = []
    families: dict[str, str] = {}          # family -> type
    samples: dict[str, list[dict[str, str]]] = {}  # family -> label sets
    for lineno, raw in enumerate(lines, start=1):
        line = raw.rstrip("\n")
        if line == "":
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 2 or parts[1] not in ("TYPE", "HELP"):
                continue  # other comments are legal and ignored
            if parts[1] == "HELP":
                continue
            if len(parts) != 4:
                errors.append(f"line {lineno}: malformed TYPE comment")
                continue
            _, _, name, mtype = parts
            if not METRIC_NAME.match(name):
                errors.append(f"line {lineno}: invalid metric name {name!r}")
            if mtype not in TYPES:
                errors.append(f"line {lineno}: unknown type {mtype!r}")
            if name in families:
                errors.append(f"line {lineno}: duplicate TYPE for {name!r}")
            families[name] = mtype
            continue
        # Sample: name[{labels}] value [timestamp]
        match = re.match(r"([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)"
                         r"(?:\s+(-?\d+))?\s*\Z", line)
        if not match:
            errors.append(f"line {lineno}: unparsable sample: {line!r}")
            continue
        name, labels, value = match.group(1), match.group(2), match.group(3)
        if labels is not None and not LABELS.match(labels):
            errors.append(f"line {lineno}: malformed labels {labels!r}")
        if not parse_value(value):
            errors.append(f"line {lineno}: invalid value {value!r}")
        family = base_family(name, families)
        if family is None:
            errors.append(f"line {lineno}: sample {name!r} has no preceding "
                          "# TYPE declaration")
            continue
        label_map: dict[str, str] = {}
        if labels is not None:
            for lmatch in re.finditer(r'([a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*'
                                      r'"((?:[^"\\\n]|\\[\\"n])*)"', labels):
                label_map[lmatch.group(1)] = lmatch.group(2)
        label_map["__name__"] = name
        samples.setdefault(family, []).append(label_map)
    for family, mtype in families.items():
        if mtype == "counter" and not family.endswith("_total"):
            errors.append(f"counter {family!r} does not end in _total")
        members = samples.get(family, [])
        if not members:
            errors.append(f"family {family!r} declared but has no samples")
            continue
        if mtype == "summary":
            names = {m["__name__"] for m in members}
            if f"{family}_sum" not in names:
                errors.append(f"summary {family!r} is missing _sum")
            if f"{family}_count" not in names:
                errors.append(f"summary {family!r} is missing _count")
            quantiles = [m for m in members
                         if m["__name__"] == family]
            if not quantiles:
                errors.append(f"summary {family!r} has no quantile samples")
            for m in quantiles:
                if "quantile" not in m:
                    errors.append(f"summary {family!r} sample lacks a "
                                  "quantile label")
    return errors


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(f"usage: {argv[0]} FILE|-", file=sys.stderr)
        return 2
    if argv[1] == "-":
        lines = sys.stdin.readlines()
    else:
        try:
            with open(argv[1], encoding="utf-8") as f:
                lines = f.readlines()
        except OSError as e:
            print(f"{argv[1]}: {e}", file=sys.stderr)
            return 1
    if not lines:
        print(f"{argv[1]}: empty exposition", file=sys.stderr)
        return 1
    errors = validate(lines)
    for error in errors:
        print(f"{argv[1]}: {error}")
    if not errors:
        families = sum(1 for line in lines if line.startswith("# TYPE"))
        print(f"{argv[1]}: OK ({families} families)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
