#!/usr/bin/env python3
"""Validator for the observability JSONL trace (schema version 1).

A trace file is one JSON object per line (see src/obs/trace_export.h):

  line 1    {"record":"run","schema":1,"run_id":ID,"sim_time_end":T,...}
  then      {"record":"event","run_id":ID,"t":T,"kind":K,"subject":S,
             "detail":D}
            {"record":"metric","run_id":ID,"t":T,"name":N,
             "type":"counter"|"gauge","value":V}
            {"record":"histogram","run_id":ID,"t":T,"name":N,"count":C,
             "sum":S,"min":m,"max":M,"p50":...,"p90":...,"p99":...}

Checked per record: required fields present, field types correct, flat
values only (no nested objects/arrays), run_id matches the header, and
histogram quantiles are ordered (min <= p50 <= p90 <= p99 <= max; a
numeric field may be null = unavailable).

Usage: check_obs_schema.py FILE.jsonl [--require-stages]

--require-stages additionally demands one non-empty
stage.<name>.seconds histogram per controller pipeline stage (the seven
stages of src/obs/stage_profiler.h).

Exits 0 when valid, 1 with one "FILE:line: message" per violation.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

PIPELINE_STAGES = [
    "monitor_sample",
    "discretize",
    "markov_lookahead",
    "tan_classify",
    "alarm_filter",
    "cause_inference",
    "prevention",
]

SCHEMA_VERSION = 1

# field -> required type(s); None in a numeric field means "unavailable".
STR = (str,)
NUM = (int, float)
REQUIRED = {
    "run": {"schema": NUM, "run_id": STR, "sim_time_end": NUM},
    "event": {"run_id": STR, "t": NUM, "kind": STR, "subject": STR,
              "detail": STR},
    "metric": {"run_id": STR, "t": NUM, "name": STR, "type": STR,
               "value": NUM},
    "histogram": {"run_id": STR, "t": NUM, "name": STR, "count": NUM,
                  "sum": NUM, "min": NUM, "max": NUM, "p50": NUM,
                  "p90": NUM, "p99": NUM},
}
NULLABLE = {"sum", "min", "max", "p50", "p90", "p99", "value"}


def check_record(obj: dict, lineno: int, errors: list[str],
                 run_id: str | None) -> None:
    record = obj.get("record")
    if record not in REQUIRED:
        errors.append(f"{lineno}: unknown record type {record!r}")
        return
    for field, types in REQUIRED[record].items():
        if field not in obj:
            errors.append(f"{lineno}: {record} record missing {field!r}")
            continue
        value = obj[field]
        if value is None and field in NULLABLE:
            continue
        # bool is an int subclass but never a valid trace value.
        if isinstance(value, bool) or not isinstance(value, types):
            errors.append(
                f"{lineno}: field {field!r} has type "
                f"{type(value).__name__}, expected "
                f"{'/'.join(t.__name__ for t in types)}")
    for key, value in obj.items():
        if isinstance(value, (dict, list)):
            errors.append(f"{lineno}: field {key!r} is nested; "
                          "records must be flat")
    if record == "metric" and obj.get("type") not in ("counter", "gauge"):
        errors.append(f"{lineno}: metric type {obj.get('type')!r} is not "
                      "counter/gauge")
    if record != "run" and run_id is not None and obj.get("run_id") != run_id:
        errors.append(f"{lineno}: run_id {obj.get('run_id')!r} does not "
                      f"match header {run_id!r}")
    if record == "histogram":
        ordered = [obj.get(f) for f in ("min", "p50", "p90", "p99", "max")]
        numeric = [v for v in ordered if isinstance(v, NUM)
                   and not isinstance(v, bool)]
        if numeric != sorted(numeric):
            errors.append(f"{lineno}: histogram quantiles out of order: "
                          f"{ordered}")


def validate(path: Path, require_stages: bool) -> list[str]:
    errors: list[str] = []
    run_id: str | None = None
    stage_counts: dict[str, float] = {}
    lines = path.read_text().splitlines()
    if not lines:
        return ["1: empty trace (expected a run header)"]
    for lineno, line in enumerate(lines, start=1):
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"{lineno}: invalid JSON: {e}")
            continue
        if not isinstance(obj, dict):
            errors.append(f"{lineno}: expected a JSON object")
            continue
        if lineno == 1:
            if obj.get("record") != "run":
                errors.append("1: first record must be the run header")
            elif obj.get("schema") != SCHEMA_VERSION:
                errors.append(f"1: schema {obj.get('schema')!r}, expected "
                              f"{SCHEMA_VERSION}")
            else:
                run_id = obj.get("run_id")
        elif obj.get("record") == "run":
            errors.append(f"{lineno}: duplicate run header")
        check_record(obj, lineno, errors, run_id)
        if obj.get("record") == "histogram":
            name = obj.get("name")
            count = obj.get("count")
            if isinstance(name, str) and isinstance(count, NUM):
                stage_counts[name] = count
    if require_stages:
        for stage in PIPELINE_STAGES:
            name = f"stage.{stage}.seconds"
            if name not in stage_counts:
                errors.append(f"trace has no {name} histogram")
            elif stage_counts[name] <= 0:
                errors.append(f"{name} histogram is empty")
    return errors


def main(argv: list[str]) -> int:
    args = [a for a in argv[1:] if a != "--require-stages"]
    require_stages = "--require-stages" in argv[1:]
    if len(args) != 1:
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        print(f"usage: {argv[0]} FILE.jsonl [--require-stages]",
              file=sys.stderr)
        return 2
    path = Path(args[0])
    if not path.is_file():
        print(f"{path}: no such file", file=sys.stderr)
        return 1
    errors = validate(path, require_stages)
    for error in errors:
        print(f"{path}:{error}")
    if not errors:
        print(f"{path}: OK")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
