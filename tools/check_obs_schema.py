#!/usr/bin/env python3
"""Validator for the observability JSONL trace (schema versions 1-4).

A trace file is one JSON object per line (see src/obs/trace_export.h):

  line 1    {"record":"run","schema":1|2|3,"run_id":ID,"sim_time_end":T,...}
  then      {"record":"event","run_id":ID,"t":T,"kind":K,"subject":S,
             "detail":D}
            {"record":"metric","run_id":ID,"t":T,"name":N,
             "type":"counter"|"gauge","value":V}
            {"record":"histogram","run_id":ID,"t":T,"name":N,"count":C,
             "sum":S,"min":m,"max":M,"p50":...,"p90":...,"p99":...}

Schema v2 adds alert-lifecycle span records (src/obs/span_tracer.h):

            {"record":"span","run_id":ID,"trace_id":TR,"span_id":SP,
             "parent_id":P,"vm":VM,"stage":STAGE,"t_start":T0,
             "t_end":T1,<flat attributes...>}

Schema v3 adds model-introspection records (src/obs/model_introspect.h):

            {"record":"calibration","run_id":ID,"t":T,"horizon_step":S,
             "horizon_s":H,"n":N,"hits":K,"p_mean":...,"brier":...,
             "logloss":...,"bin0_n":...,"bin0_hits":...,...}
            {"record":"model_drift","run_id":ID,"t":T,
             "kind":"calibration"|"occupancy","triggered":0|1,
             ["attribute":A,]<numeric drift values...>}

Checked per record: required fields present, field types correct, flat
values only (no nested objects/arrays), run_id matches the header, and
histogram quantiles are ordered (min <= p50 <= p90 <= p99 <= max; a
numeric field may be null = unavailable).

Checked per span chain (v2): span_id uniqueness, parent linkage (every
parent_id resolves to an earlier span of the same trace_id; exactly one
root per trace), monotone timestamps (t_end >= t_start, child t_start >=
parent t_start), and terminal state (each trace closes with exactly one
terminal span — validated/escalated/expired — as its last span).

Schema v4 adds episode flight-recorder records (src/obs/flight_recorder.h),
a `kind` family sharing the owning span episode's trace_id:

            {"record":"episode_evidence","kind":"bundle","run_id":ID,
             "trace_id":TR,"vm":VM,"t_open":T0,"t_close":T1,
             "outcome":O,"ticks":N,"pre_ticks":P,"truncated_ticks":X,
             "attributes":13,"filter_k":k,...,"attr0":NAME,...}
            {"record":"episode_evidence","kind":"tick",...,"seq":S,
             "t":T,"phase":"pre"|"episode","abnormal":0|1,...,
             "raw<i>":...,"bin<i>":...,"mode<i>":...,"impact<i>":...,
             "modep<i>":...,"horizon_len":H}
            {"record":"episode_evidence","kind":"diagnosis"|"prevention"
             |"counterfactual",...}

Checked per evidence group (v4): every bundle's trace_id resolves to a
span episode of the same VM; tick seq values are 0..ticks-1 in order
with exactly one raw/bin/mode/impact/modep field per attribute (and
attributes matching the 13-attribute monitoring vector); "pre"-phase
ticks precede the owning episode root's t_start and "episode"-phase
ticks lie inside the episode's span lifetime; diagnosis carries one
rank<r>_attr/_impact pair per count.

Usage: check_obs_schema.py FILE.jsonl [--require-stages]
                                      [--require-outcomes]
                                      [--require-calibration]
                                      [--require-evidence]

--require-stages additionally demands one non-empty
stage.<name>.seconds histogram per controller pipeline stage (the seven
stages of src/obs/stage_profiler.h).

--require-outcomes (v2 traces) additionally demands span records plus
the outcome-ledger counters (alert.outcome.*), and cross-checks the
prevented / false_alarm / escalated / expired counters against the
outcomes derived from the terminal spans.

--require-calibration (v3 traces) additionally demands at least one
calibration record (with consistent reliability bins: per record, the
bin<b>_n fields sum to n and the bin<b>_hits fields sum to hits), the
model.calibration.samples_total counter, and the pooled reliability
bin counters (model.calibration.reliability.bin<b>.n/.hits).

--require-evidence (v4 traces) additionally demands at least one
episode_evidence bundle and the recorder.bundles_total /
recorder.dropped_total counters.

Exits 0 when valid, 1 with one "FILE:line: message" per violation.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

PIPELINE_STAGES = [
    "monitor_sample",
    "discretize",
    "markov_lookahead",
    "tan_classify",
    "alarm_filter",
    "cause_inference",
    "prevention",
]

SUPPORTED_SCHEMAS = (1, 2, 3, 4)

SPAN_STAGES = {
    "raw_alert",
    "confirmed",
    "cause_inferred",
    "prevention_issued",
    "validated",
    "escalated",
    "expired",
}
TERMINAL_STAGES = {"validated", "escalated", "expired"}

# Ledger counters derivable from terminal-span `outcome` attributes.
SPAN_DERIVED_OUTCOMES = ("prevented", "false_alarm", "escalated", "expired")
# Ledger counters that exist without a span (a violation nothing
# predicted leaves no episode).
EXTRA_OUTCOME_METRICS = ("alert.outcome.missed", "alert.suppressed_total")

# field -> required type(s); None in a numeric field means "unavailable".
STR = (str,)
NUM = (int, float)
REQUIRED = {
    "run": {"schema": NUM, "run_id": STR, "sim_time_end": NUM},
    "event": {"run_id": STR, "t": NUM, "kind": STR, "subject": STR,
              "detail": STR},
    "metric": {"run_id": STR, "t": NUM, "name": STR, "type": STR,
               "value": NUM},
    "histogram": {"run_id": STR, "t": NUM, "name": STR, "count": NUM,
                  "sum": NUM, "min": NUM, "max": NUM, "p50": NUM,
                  "p90": NUM, "p99": NUM},
    "span": {"run_id": STR, "trace_id": STR, "span_id": STR,
             "parent_id": STR, "vm": STR, "stage": STR, "t_start": NUM,
             "t_end": NUM},
    "calibration": {"run_id": STR, "t": NUM, "horizon_step": NUM,
                    "horizon_s": NUM, "n": NUM, "hits": NUM,
                    "p_mean": NUM, "brier": NUM, "logloss": NUM},
    "model_drift": {"run_id": STR, "t": NUM, "kind": STR,
                    "triggered": NUM},
    "episode_evidence": {"run_id": STR, "trace_id": STR, "vm": STR,
                         "kind": STR},
}
DRIFT_KINDS = {"calibration", "occupancy"}
NULLABLE = {"sum", "min", "max", "p50", "p90", "p99", "value"}

# Per-kind required fields of episode_evidence records (on top of the
# shared run_id/trace_id/vm/kind base).
EVIDENCE_KIND_REQUIRED = {
    "bundle": {"t_open": NUM, "t_close": NUM, "outcome": STR,
               "ticks": NUM, "pre_ticks": NUM, "truncated_ticks": NUM,
               "attributes": NUM, "filter_k": NUM, "filter_w": NUM,
               "alert_min_top_impact": NUM, "prevention_mode": NUM,
               "companion_scaling": NUM, "lookahead_s": NUM,
               "sampling_interval_s": NUM, "decomposable": NUM},
    "tick": {"seq": NUM, "t": NUM, "phase": STR, "abnormal": NUM,
             "raw_alert": NUM, "confirmed": NUM, "score": NUM,
             "prior": NUM, "decomposable": NUM, "horizon_len": NUM},
    "diagnosis": {"t": NUM, "count": NUM},
    "prevention": {"t": NUM, "phase": STR, "attribute": STR,
                   "metric_kind": STR, "scale_possible": NUM,
                   "migrate_possible": NUM, "mode": NUM, "applied": STR},
    "counterfactual": {"policy": NUM, "compared": NUM, "diverged": NUM,
                       "detail": STR},
}
EVIDENCE_FLAG_FIELDS = {
    "tick": ("abnormal", "raw_alert", "confirmed", "decomposable"),
    "bundle": ("companion_scaling", "decomposable"),
    "prevention": ("scale_possible", "migrate_possible"),
}
EVIDENCE_TICK_PHASES = {"pre", "episode"}
EVIDENCE_PREVENTION_PHASES = {"initial", "companion", "fallback"}
EVIDENCE_APPLIED = {"none", "scale", "migrate"}
EVIDENCE_METRIC_KINDS = {"cpu", "memory", "other"}
# The monitoring vector is fixed (monitor/attributes.h).
ATTRIBUTE_COUNT = 13


def check_record(obj: dict, lineno: int, errors: list[str],
                 run_id: str | None) -> None:
    record = obj.get("record")
    if record not in REQUIRED:
        errors.append(f"{lineno}: unknown record type {record!r}")
        return
    for field, types in REQUIRED[record].items():
        if field not in obj:
            errors.append(f"{lineno}: {record} record missing {field!r}")
            continue
        value = obj[field]
        if value is None and field in NULLABLE:
            continue
        # bool is an int subclass but never a valid trace value.
        if isinstance(value, bool) or not isinstance(value, types):
            errors.append(
                f"{lineno}: field {field!r} has type "
                f"{type(value).__name__}, expected "
                f"{'/'.join(t.__name__ for t in types)}")
    for key, value in obj.items():
        if isinstance(value, (dict, list)):
            errors.append(f"{lineno}: field {key!r} is nested; "
                          "records must be flat")
    if record == "metric" and obj.get("type") not in ("counter", "gauge"):
        errors.append(f"{lineno}: metric type {obj.get('type')!r} is not "
                      "counter/gauge")
    if record != "run" and run_id is not None and obj.get("run_id") != run_id:
        errors.append(f"{lineno}: run_id {obj.get('run_id')!r} does not "
                      f"match header {run_id!r}")
    if record == "histogram":
        ordered = [obj.get(f) for f in ("min", "p50", "p90", "p99", "max")]
        numeric = [v for v in ordered if isinstance(v, NUM)
                   and not isinstance(v, bool)]
        if numeric != sorted(numeric):
            errors.append(f"{lineno}: histogram quantiles out of order: "
                          f"{ordered}")
    if record == "span" and obj.get("stage") not in SPAN_STAGES:
        errors.append(f"{lineno}: unknown span stage {obj.get('stage')!r}")
    if record == "calibration":
        bin_n = sum(v for k, v in obj.items()
                    if k.startswith("bin") and k.endswith("_n")
                    and isinstance(v, NUM) and not isinstance(v, bool))
        bin_hits = sum(v for k, v in obj.items()
                       if k.startswith("bin") and k.endswith("_hits")
                       and isinstance(v, NUM) and not isinstance(v, bool))
        if isinstance(obj.get("n"), NUM) and bin_n != obj["n"]:
            errors.append(f"{lineno}: calibration bin counts sum to "
                          f"{bin_n}, but n is {obj['n']}")
        if isinstance(obj.get("hits"), NUM) and bin_hits != obj["hits"]:
            errors.append(f"{lineno}: calibration bin hits sum to "
                          f"{bin_hits}, but hits is {obj['hits']}")
    if record == "model_drift":
        if obj.get("kind") not in DRIFT_KINDS:
            errors.append(f"{lineno}: unknown drift kind "
                          f"{obj.get('kind')!r}")
        if obj.get("triggered") not in (0, 1):
            errors.append(f"{lineno}: model_drift triggered must be 0 or "
                          f"1, got {obj.get('triggered')!r}")
    if record == "episode_evidence":
        kind = obj.get("kind")
        if kind not in EVIDENCE_KIND_REQUIRED:
            errors.append(f"{lineno}: unknown evidence kind {kind!r}")
            return
        for field, types in EVIDENCE_KIND_REQUIRED[kind].items():
            value = obj.get(field)
            if field not in obj:
                errors.append(f"{lineno}: evidence {kind} record missing "
                              f"{field!r}")
            elif isinstance(value, bool) or not isinstance(value, types):
                errors.append(
                    f"{lineno}: field {field!r} has type "
                    f"{type(value).__name__}, expected "
                    f"{'/'.join(t.__name__ for t in types)}")
        for field in EVIDENCE_FLAG_FIELDS.get(kind, ()):
            if obj.get(field) not in (0, 1):
                errors.append(f"{lineno}: evidence {kind} field "
                              f"{field!r} must be 0 or 1, got "
                              f"{obj.get(field)!r}")
        if kind == "tick" and obj.get("phase") not in EVIDENCE_TICK_PHASES:
            errors.append(f"{lineno}: unknown tick phase "
                          f"{obj.get('phase')!r}")
        if kind == "prevention":
            if obj.get("phase") not in EVIDENCE_PREVENTION_PHASES:
                errors.append(f"{lineno}: unknown prevention phase "
                              f"{obj.get('phase')!r}")
            if obj.get("metric_kind") not in EVIDENCE_METRIC_KINDS:
                errors.append(f"{lineno}: unknown prevention metric_kind "
                              f"{obj.get('metric_kind')!r}")
            if obj.get("applied") not in EVIDENCE_APPLIED:
                errors.append(f"{lineno}: unknown prevention applied "
                              f"{obj.get('applied')!r}")


def check_spans(spans: list[tuple[int, dict]], errors: list[str]) -> None:
    """Chain-level span checks: ids, linkage, timestamps, terminals."""
    by_id: dict[str, tuple[int, dict]] = {}
    for lineno, span in spans:
        span_id = span.get("span_id")
        if not isinstance(span_id, str):
            continue
        if span_id in by_id:
            errors.append(f"{lineno}: duplicate span_id {span_id!r} "
                          f"(first at line {by_id[span_id][0]})")
        else:
            by_id[span_id] = (lineno, span)

    traces: dict[str, list[tuple[int, dict]]] = {}
    for lineno, span in spans:
        trace_id = span.get("trace_id")
        if isinstance(trace_id, str):
            traces.setdefault(trace_id, []).append((lineno, span))

    for lineno, span in spans:
        t_start, t_end = span.get("t_start"), span.get("t_end")
        if (isinstance(t_start, NUM) and isinstance(t_end, NUM)
                and t_end < t_start):
            errors.append(f"{lineno}: span {span.get('span_id')!r} has "
                          f"t_end {t_end} < t_start {t_start}")
        parent_id = span.get("parent_id")
        if not isinstance(parent_id, str) or parent_id == "":
            continue  # root (or already reported as a type error)
        parent = by_id.get(parent_id)
        if parent is None:
            errors.append(f"{lineno}: span {span.get('span_id')!r} parent "
                          f"{parent_id!r} not found")
            continue
        parent_lineno, parent_span = parent
        if parent_lineno >= lineno:
            errors.append(f"{lineno}: span {span.get('span_id')!r} appears "
                          f"before its parent (line {parent_lineno})")
        if parent_span.get("trace_id") != span.get("trace_id"):
            errors.append(f"{lineno}: span {span.get('span_id')!r} parent "
                          f"belongs to trace "
                          f"{parent_span.get('trace_id')!r}")
        parent_start = parent_span.get("t_start")
        if (isinstance(t_start, NUM) and isinstance(parent_start, NUM)
                and t_start < parent_start):
            errors.append(f"{lineno}: span {span.get('span_id')!r} starts "
                          f"at {t_start}, before its parent "
                          f"({parent_start})")

    for trace_id, members in traces.items():
        roots = [s for _, s in members if s.get("parent_id") == ""]
        if len(roots) != 1:
            errors.append(f"trace {trace_id!r} has {len(roots)} root spans, "
                          "expected exactly 1")
        last_lineno, last = members[-1]
        for lineno, span in members:
            terminal = span.get("stage") in TERMINAL_STAGES
            if terminal and lineno != last_lineno:
                errors.append(f"{lineno}: terminal span "
                              f"{span.get('span_id')!r} is not the last "
                              f"span of trace {trace_id!r}")
        if last.get("stage") not in TERMINAL_STAGES:
            errors.append(f"trace {trace_id!r} does not end in a terminal "
                          f"span (last stage {last.get('stage')!r} at line "
                          f"{last_lineno})")


def check_evidence(evidence: list[tuple[int, dict]],
                   spans: list[tuple[int, dict]],
                   errors: list[str]) -> None:
    """Group-level flight-recorder checks: bundle <-> span linkage,
    tick sequencing, per-attribute field families, tick-in-lifetime."""
    # Span episode extents: root t_start and latest t_end per trace_id.
    episodes: dict[str, dict] = {}
    for _, span in spans:
        trace_id = span.get("trace_id")
        if not isinstance(trace_id, str):
            continue
        info = episodes.setdefault(
            trace_id, {"vm": span.get("vm"), "root_start": None,
                       "end": None})
        if span.get("parent_id") == "" and isinstance(
                span.get("t_start"), NUM):
            info["root_start"] = span["t_start"]
        t_end = span.get("t_end")
        if isinstance(t_end, NUM):
            info["end"] = (t_end if info["end"] is None
                           else max(info["end"], t_end))

    groups: dict[str, list[tuple[int, dict]]] = {}
    for lineno, obj in evidence:
        trace_id = obj.get("trace_id")
        if isinstance(trace_id, str):
            groups.setdefault(trace_id, []).append((lineno, obj))

    for trace_id, members in groups.items():
        bundles = [(l, o) for l, o in members if o.get("kind") == "bundle"]
        if len(bundles) != 1:
            errors.append(f"evidence group {trace_id!r} has "
                          f"{len(bundles)} bundle records, expected "
                          "exactly 1")
            continue
        blineno, bundle = bundles[0]
        episode = episodes.get(trace_id)
        if episode is None:
            errors.append(f"{blineno}: evidence bundle {trace_id!r} has "
                          "no matching span episode")
        elif episode["vm"] != bundle.get("vm"):
            errors.append(f"{blineno}: bundle vm {bundle.get('vm')!r} != "
                          f"span episode vm {episode['vm']!r}")
        attrs = bundle.get("attributes")
        if attrs != ATTRIBUTE_COUNT:
            errors.append(f"{blineno}: bundle attributes {attrs!r}, "
                          f"expected {ATTRIBUTE_COUNT} "
                          "(the monitoring vector)")
        if isinstance(attrs, int):
            for i in range(attrs):
                if not isinstance(bundle.get(f"attr{i}"), str):
                    errors.append(f"{blineno}: bundle missing attribute "
                                  f"name attr{i}")

        ticks = [(l, o) for l, o in members if o.get("kind") == "tick"]
        expected = bundle.get("ticks")
        if isinstance(expected, int) and len(ticks) != expected:
            errors.append(f"{blineno}: bundle declares {expected} ticks, "
                          f"trace has {len(ticks)}")
        pre_ticks = bundle.get("pre_ticks")
        for idx, (lineno, tick) in enumerate(ticks):
            if tick.get("seq") != idx:
                errors.append(f"{lineno}: tick seq {tick.get('seq')!r}, "
                              f"expected {idx}")
            if isinstance(attrs, int):
                for family in ("raw", "bin", "mode", "impact", "modep"):
                    count = sum(1 for key in tick
                                if key.startswith(family)
                                and key[len(family):].isdigit())
                    if count != attrs:
                        errors.append(f"{lineno}: tick has {count} "
                                      f"{family}<i> fields, expected "
                                      f"{attrs}")
            phase = tick.get("phase")
            if isinstance(pre_ticks, int) and phase in EVIDENCE_TICK_PHASES:
                if (idx < pre_ticks) != (phase == "pre"):
                    errors.append(f"{lineno}: tick {idx} phase {phase!r} "
                                  f"inconsistent with pre_ticks "
                                  f"{pre_ticks}")
            t = tick.get("t")
            if episode is None or not isinstance(t, NUM):
                continue
            root, end = episode["root_start"], episode["end"]
            # Reactive-opened episodes open *after* the driver records
            # the current tick, so the opening tick legitimately lands
            # in the pre-context with t == root start.
            if phase == "pre" and isinstance(root, NUM) and t > root:
                errors.append(f"{lineno}: pre tick at t={t} after the "
                              f"episode root start {root}")
            if (phase == "episode" and isinstance(root, NUM)
                    and isinstance(end, NUM) and not root <= t <= end):
                errors.append(f"{lineno}: episode tick at t={t} outside "
                              f"the span lifetime [{root}, {end}]")

        for lineno, diag in members:
            if diag.get("kind") != "diagnosis":
                continue
            count = diag.get("count")
            if not isinstance(count, int):
                continue
            for r in range(1, count + 1):
                if (not isinstance(diag.get(f"rank{r}_attr"), str)
                        or not isinstance(diag.get(f"rank{r}_impact"),
                                          NUM)):
                    errors.append(f"{lineno}: diagnosis missing "
                                  f"rank{r}_attr/_impact pair")
                    break


def check_outcomes(spans: list[tuple[int, dict]],
                   counters: dict[str, float],
                   errors: list[str]) -> None:
    if not spans:
        errors.append("--require-outcomes: trace has no span records")
    derived = {name: 0 for name in SPAN_DERIVED_OUTCOMES}
    for _, span in spans:
        if span.get("stage") in TERMINAL_STAGES:
            outcome = span.get("outcome")
            if outcome not in derived:
                errors.append(f"terminal span {span.get('span_id')!r} has "
                              f"invalid outcome {outcome!r}")
            else:
                derived[outcome] += 1
    for name, expected in derived.items():
        metric = f"alert.outcome.{name}"
        actual = counters.get(metric)
        if actual is None:
            errors.append(f"--require-outcomes: missing {metric} counter")
        elif actual != expected:
            errors.append(f"{metric} counter is {actual}, but the spans "
                          f"derive {expected}")
    for metric in EXTRA_OUTCOME_METRICS:
        if metric not in counters:
            errors.append(f"--require-outcomes: missing {metric} counter")


def validate(path: Path, require_stages: bool, require_outcomes: bool,
             require_calibration: bool = False,
             require_evidence: bool = False) -> list[str]:
    errors: list[str] = []
    run_id: str | None = None
    schema: int | None = None
    stage_counts: dict[str, float] = {}
    counters: dict[str, float] = {}
    spans: list[tuple[int, dict]] = []
    calibrations: list[tuple[int, dict]] = []
    evidence: list[tuple[int, dict]] = []
    lines = path.read_text().splitlines()
    if not lines:
        return ["1: empty trace (expected a run header)"]
    for lineno, line in enumerate(lines, start=1):
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"{lineno}: invalid JSON: {e}")
            continue
        if not isinstance(obj, dict):
            errors.append(f"{lineno}: expected a JSON object")
            continue
        if lineno == 1:
            if obj.get("record") != "run":
                errors.append("1: first record must be the run header")
            elif obj.get("schema") not in SUPPORTED_SCHEMAS:
                errors.append(f"1: schema {obj.get('schema')!r}, expected "
                              f"one of {SUPPORTED_SCHEMAS}")
            else:
                run_id = obj.get("run_id")
                schema = obj.get("schema")
        elif obj.get("record") == "run":
            errors.append(f"{lineno}: duplicate run header")
        check_record(obj, lineno, errors, run_id)
        if obj.get("record") == "span":
            if schema == 1:
                errors.append(f"{lineno}: span record in a schema-1 trace")
            spans.append((lineno, obj))
        if obj.get("record") in ("calibration", "model_drift"):
            if schema is not None and schema < 3:
                errors.append(f"{lineno}: {obj['record']} record in a "
                              f"schema-{schema} trace")
            if obj.get("record") == "calibration":
                calibrations.append((lineno, obj))
        if obj.get("record") == "episode_evidence":
            if schema is not None and schema < 4:
                errors.append(f"{lineno}: episode_evidence record in a "
                              f"schema-{schema} trace")
            evidence.append((lineno, obj))
        if obj.get("record") == "histogram":
            name = obj.get("name")
            count = obj.get("count")
            if isinstance(name, str) and isinstance(count, NUM):
                stage_counts[name] = count
        if obj.get("record") == "metric" and obj.get("type") == "counter":
            name = obj.get("name")
            value = obj.get("value")
            if isinstance(name, str) and isinstance(value, NUM):
                counters[name] = value
    check_spans(spans, errors)
    check_evidence(evidence, spans, errors)
    if require_stages:
        for stage in PIPELINE_STAGES:
            name = f"stage.{stage}.seconds"
            if name not in stage_counts:
                errors.append(f"trace has no {name} histogram")
            elif stage_counts[name] <= 0:
                errors.append(f"{name} histogram is empty")
    if require_outcomes:
        check_outcomes(spans, counters, errors)
    if require_calibration:
        if not calibrations:
            errors.append("--require-calibration: trace has no "
                          "calibration records")
        if "model.calibration.samples_total" not in counters:
            errors.append("--require-calibration: missing "
                          "model.calibration.samples_total counter")
        bin_counters = [name for name in counters
                        if name.startswith("model.calibration.reliability."
                                           "bin")]
        if not bin_counters:
            errors.append("--require-calibration: missing "
                          "model.calibration.reliability.bin<b>.* counters")
    if require_evidence:
        if not any(o.get("kind") == "bundle" for _, o in evidence):
            errors.append("--require-evidence: trace has no "
                          "episode_evidence bundle records")
        for metric in ("recorder.bundles_total", "recorder.dropped_total"):
            if metric not in counters:
                errors.append(f"--require-evidence: missing {metric} "
                              "counter")
    return errors


def main(argv: list[str]) -> int:
    flags = {"--require-stages", "--require-outcomes",
             "--require-calibration", "--require-evidence"}
    args = [a for a in argv[1:] if a not in flags]
    require_stages = "--require-stages" in argv[1:]
    require_outcomes = "--require-outcomes" in argv[1:]
    require_calibration = "--require-calibration" in argv[1:]
    require_evidence = "--require-evidence" in argv[1:]
    if len(args) != 1:
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        print(f"usage: {argv[0]} FILE.jsonl [--require-stages] "
              "[--require-outcomes] [--require-calibration] "
              "[--require-evidence]",
              file=sys.stderr)
        return 2
    path = Path(args[0])
    if not path.is_file():
        print(f"{path}: no such file", file=sys.stderr)
        return 1
    errors = validate(path, require_stages, require_outcomes,
                      require_calibration, require_evidence)
    for error in errors:
        print(f"{path}:{error}")
    if not errors:
        print(f"{path}: OK")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
