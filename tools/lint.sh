#!/usr/bin/env bash
# Repo lint runner: custom invariant lint + clang-tidy (when available).
#
# Usage: tools/lint.sh [PATHS...]
#   PATHS default to src. clang-tidy needs a compilation database; point
#   PREPARE_BUILD_DIR at a configured build tree (default: build) — the
#   top-level CMakeLists exports compile_commands.json automatically.
#
# Exits non-zero if any enabled linter reports a finding. clang-tidy is
# skipped with a notice when the binary is not installed (the custom lint
# always runs), so CI hosts without LLVM still get invariant coverage.
set -u -o pipefail

cd "$(dirname "$0")/.."

PATHS=("$@")
if [ ${#PATHS[@]} -eq 0 ]; then
  PATHS=(src)
fi

status=0

echo "== check_invariants.py ${PATHS[*]}"
if ! python3 tools/check_invariants.py "${PATHS[@]}"; then
  status=1
fi

if command -v clang-tidy > /dev/null 2>&1; then
  build_dir="${PREPARE_BUILD_DIR:-build}"
  if [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "lint.sh: no $build_dir/compile_commands.json — configure first:" >&2
    echo "  cmake -B $build_dir -S .    (exports the compilation database)" >&2
    exit 1
  fi
  mapfile -t tidy_files < <(find "${PATHS[@]}" -name '*.cpp' | sort)
  echo "== clang-tidy (${#tidy_files[@]} files, config .clang-tidy)"
  if ! clang-tidy -p "$build_dir" --quiet --warnings-as-errors='*' \
      "${tidy_files[@]}"; then
    status=1
  fi
else
  echo "== clang-tidy not installed — skipped (custom lint still enforced)"
fi

exit $status
