#!/usr/bin/env bash
# Repo lint runner: custom invariant lint, Clang thread-safety analysis,
# clang-tidy, and the project AST rules.
#
# Usage: tools/lint.sh [PATHS...]
#   PATHS default to src. clang-tidy and analyze need a compilation
#   database; point PREPARE_BUILD_DIR at a configured build tree
#   (default: build) — the top-level CMakeLists exports
#   compile_commands.json automatically. When that build dir has no
#   database, lint.sh configures a throwaway one into .lint-build/
#   (gitignored) so a fresh checkout can lint without building first.
#
# Passes (each skippable, each individually requirable):
#   invariants     python3 tools/check_invariants.py  (always available)
#   thread-safety  clang++ -fsyntax-only -Wthread-safety -Werror over the
#                  .cpp files under PATHS — the compile-time race detector
#   clang-tidy     full clang-tidy with .clang-tidy config
#   analyze        python3 tools/prepare_analyze.py — AST-grounded project
#                  rules: per-TU (layering DAG, determinism, strong-type
#                  boundaries, mutex discipline) plus the interprocedural
#                  contracts (PREPARE_DRIVER_CONFINED thread confinement,
#                  PREPARE_HOT allocation/lock/IO freedom) over the
#                  whole-program call graph; needs libclang + the python
#                  clang bindings, skips with a notice otherwise
#
# Every pass that runs is blocking: a finding fails the script. The
# run ends with a per-pass PASS/FAIL/SKIP summary table (with the skip
# reason), so a green exit can be audited for what actually ran.
#
# Environment:
#   PREPARE_LINT_SKIP     comma/space list of passes to skip outright
#                         (e.g. PREPARE_LINT_SKIP=clang-tidy,thread-safety
#                         for a quick local run).
#   PREPARE_LINT_REQUIRE  comma/space list of passes that must RUN: a
#                         required pass whose tool is missing fails the
#                         script instead of being skipped with a notice.
#                         CI sets this so "clang not found" can never turn
#                         into a silently green lint job.
#   PREPARE_CLANG         clang++ binary for the thread-safety pass
#                         (default: clang++; set clang++-18 on pinned CI).
#   PREPARE_CLANG_TIDY    clang-tidy binary (default: clang-tidy).
#   PREPARE_BUILD_DIR     build tree holding compile_commands.json
#                         (default: build).
#   PREPARE_ANALYZE_STRICT  non-empty (or CI set): unused allow()
#                         suppressions are errors, not warnings.
#   PREPARE_ANALYZE_SARIF   write the analyze pass findings to this path
#                         as SARIF 2.1.0 (CI uploads it to code scanning).
#
# Exits non-zero if any pass that ran reported a finding, or if a
# required pass could not run.
set -u -o pipefail

cd "$(dirname "$0")/.."

PATHS=("$@")
if [ ${#PATHS[@]} -eq 0 ]; then
  PATHS=(src)
fi

CLANG_BIN="${PREPARE_CLANG:-clang++}"
CLANG_TIDY_BIN="${PREPARE_CLANG_TIDY:-clang-tidy}"
build_dir="${PREPARE_BUILD_DIR:-build}"

# clang-tidy and analyze consume compile_commands.json. If the chosen
# build dir has none, configure a minimal throwaway tree so linting a
# fresh checkout needs no manual cmake step.
if [ ! -f "$build_dir/compile_commands.json" ] \
    && command -v cmake > /dev/null 2>&1; then
  echo "== no $build_dir/compile_commands.json; configuring .lint-build/"
  mkdir -p .lint-build
  if cmake -B .lint-build -S . > .lint-build/configure.log 2>&1; then
    build_dir=.lint-build
  else
    echo "lint.sh: configure failed (see .lint-build/configure.log)" >&2
  fi
fi

# has_word LIST WORD — true if WORD appears in the comma/space list.
has_word() {
  case ",${1//[ ,]/,}," in
    *",$2,"*) return 0 ;;
    *) return 1 ;;
  esac
}

skip_pass() { has_word "${PREPARE_LINT_SKIP:-}" "$1"; }
require_pass() { has_word "${PREPARE_LINT_REQUIRE:-}" "$1"; }

status=0
summary_names=()
summary_results=()
summary_notes=()

# record PASS RESULT NOTE — one row of the final summary table.
record() {
  summary_names+=("$1")
  summary_results+=("$2")
  summary_notes+=("${3:-}")
}

# Pass could not run (tool/config missing): fatal when required,
# a SKIP row otherwise.
unavailable() {  # unavailable PASS REASON
  if require_pass "$1"; then
    echo "lint.sh: required pass '$1' cannot run: $2" >&2
    record "$1" FAIL "required but unavailable: $2"
    status=1
  else
    echo "== $1 skipped: $2"
    record "$1" SKIP "$2"
  fi
}

if skip_pass invariants; then
  echo "== invariants skipped (PREPARE_LINT_SKIP)"
  record invariants SKIP "PREPARE_LINT_SKIP"
else
  echo "== check_invariants.py ${PATHS[*]}"
  if python3 tools/check_invariants.py "${PATHS[@]}"; then
    record invariants PASS ""
  else
    record invariants FAIL "findings (see above)"
    status=1
  fi
fi

# analyze_fixtures hold deliberate rule violations for the analyzer's
# self-test (and are not in the compile database): keep them out of the
# generic sweeps — prepare_analyze.py --fixtures covers them.
mapfile -t cpp_files < <(find "${PATHS[@]}" -name '*.cpp' \
    -not -path '*/analyze_fixtures/*' | sort)

if skip_pass thread-safety; then
  echo "== thread-safety skipped (PREPARE_LINT_SKIP)"
  record thread-safety SKIP "PREPARE_LINT_SKIP"
elif ! command -v "$CLANG_BIN" > /dev/null 2>&1; then
  unavailable thread-safety "$CLANG_BIN not installed"
else
  echo "== thread-safety ($CLANG_BIN -Wthread-safety, ${#cpp_files[@]} files)"
  ts_status=0
  for f in "${cpp_files[@]}"; do
    if ! "$CLANG_BIN" -fsyntax-only -std=c++20 -Isrc \
        -Wthread-safety -Werror=thread-safety "$f"; then
      ts_status=1
    fi
  done
  if [ $ts_status -ne 0 ]; then
    record thread-safety FAIL "findings (see above)"
    status=1
  else
    record thread-safety PASS "${#cpp_files[@]} files"
  fi
fi

if skip_pass clang-tidy; then
  echo "== clang-tidy skipped (PREPARE_LINT_SKIP)"
  record clang-tidy SKIP "PREPARE_LINT_SKIP"
elif ! command -v "$CLANG_TIDY_BIN" > /dev/null 2>&1; then
  unavailable clang-tidy "$CLANG_TIDY_BIN not installed"
elif [ ! -f "$build_dir/compile_commands.json" ]; then
  unavailable clang-tidy "no $build_dir/compile_commands.json (run: cmake -B $build_dir -S .)"
else
  echo "== clang-tidy ($CLANG_TIDY_BIN, ${#cpp_files[@]} files, config .clang-tidy)"
  if "$CLANG_TIDY_BIN" -p "$build_dir" --quiet --warnings-as-errors='*' \
      "${cpp_files[@]}"; then
    record clang-tidy PASS "${#cpp_files[@]} files"
  else
    record clang-tidy FAIL "findings (see above)"
    status=1
  fi
fi

if skip_pass analyze; then
  echo "== analyze skipped (PREPARE_LINT_SKIP)"
  record analyze SKIP "PREPARE_LINT_SKIP"
elif [ ! -f "$build_dir/compile_commands.json" ]; then
  unavailable analyze "no $build_dir/compile_commands.json (run: cmake -B $build_dir -S .)"
else
  analyze_args=(--build-dir "$build_dir")
  if [ -n "${PREPARE_ANALYZE_STRICT:-}" ] || [ -n "${CI:-}" ]; then
    analyze_args+=(--strict-suppressions)
  fi
  if [ -n "${PREPARE_ANALYZE_SARIF:-}" ]; then
    analyze_args+=(--sarif "$PREPARE_ANALYZE_SARIF")
  fi
  echo "== prepare_analyze.py ${analyze_args[*]} ${PATHS[*]}"
  python3 tools/prepare_analyze.py "${analyze_args[@]}" "${PATHS[@]}"
  analyze_rc=$?
  if [ $analyze_rc -eq 77 ]; then
    unavailable analyze "clang python bindings / libclang not installed"
  elif [ $analyze_rc -ne 0 ]; then
    record analyze FAIL "findings (see above)"
    status=1
  else
    record analyze PASS "per-TU + interprocedural rules"
  fi
fi

echo
echo "== lint summary"
for i in "${!summary_names[@]}"; do
  note="${summary_notes[$i]}"
  printf '   %-14s %-5s %s\n' "${summary_names[$i]}" \
      "${summary_results[$i]}" "${note:+($note)}"
done
if [ $status -eq 0 ]; then
  echo "   overall        PASS"
else
  echo "   overall        FAIL"
fi

exit $status
