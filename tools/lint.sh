#!/usr/bin/env bash
# Repo lint runner: custom invariant lint, Clang thread-safety analysis,
# clang-tidy, and the project AST rules.
#
# Usage: tools/lint.sh [PATHS...]
#   PATHS default to src. clang-tidy and analyze need a compilation
#   database; point PREPARE_BUILD_DIR at a configured build tree
#   (default: build) — the top-level CMakeLists exports
#   compile_commands.json automatically. When that build dir has no
#   database, lint.sh configures a throwaway one into .lint-build/
#   (gitignored) so a fresh checkout can lint without building first.
#
# Passes (each skippable, each individually requirable):
#   invariants     python3 tools/check_invariants.py  (always available)
#   thread-safety  clang++ -fsyntax-only -Wthread-safety -Werror over the
#                  .cpp files under PATHS — the compile-time race detector
#   clang-tidy     full clang-tidy with .clang-tidy config
#   analyze        python3 tools/prepare_analyze.py — AST-grounded project
#                  rules (layering DAG, determinism, strong-type
#                  boundaries, mutex discipline); needs libclang + the
#                  python clang bindings, skips with a notice otherwise
#
# Environment:
#   PREPARE_LINT_SKIP     comma/space list of passes to skip outright
#                         (e.g. PREPARE_LINT_SKIP=clang-tidy,thread-safety
#                         for a quick local run).
#   PREPARE_LINT_REQUIRE  comma/space list of passes that must RUN: a
#                         required pass whose tool is missing fails the
#                         script instead of being skipped with a notice.
#                         CI sets this so "clang not found" can never turn
#                         into a silently green lint job.
#   PREPARE_CLANG         clang++ binary for the thread-safety pass
#                         (default: clang++; set clang++-18 on pinned CI).
#   PREPARE_CLANG_TIDY    clang-tidy binary (default: clang-tidy).
#   PREPARE_BUILD_DIR     build tree holding compile_commands.json
#                         (default: build).
#
# Exits non-zero if any pass that ran reported a finding, or if a
# required pass could not run.
set -u -o pipefail

cd "$(dirname "$0")/.."

PATHS=("$@")
if [ ${#PATHS[@]} -eq 0 ]; then
  PATHS=(src)
fi

CLANG_BIN="${PREPARE_CLANG:-clang++}"
CLANG_TIDY_BIN="${PREPARE_CLANG_TIDY:-clang-tidy}"
build_dir="${PREPARE_BUILD_DIR:-build}"

# clang-tidy and analyze consume compile_commands.json. If the chosen
# build dir has none, configure a minimal throwaway tree so linting a
# fresh checkout needs no manual cmake step.
if [ ! -f "$build_dir/compile_commands.json" ] \
    && command -v cmake > /dev/null 2>&1; then
  echo "== no $build_dir/compile_commands.json; configuring .lint-build/"
  mkdir -p .lint-build
  if cmake -B .lint-build -S . > .lint-build/configure.log 2>&1; then
    build_dir=.lint-build
  else
    echo "lint.sh: configure failed (see .lint-build/configure.log)" >&2
  fi
fi

# has_word LIST WORD — true if WORD appears in the comma/space list.
has_word() {
  case ",${1//[ ,]/,}," in
    *",$2,"*) return 0 ;;
    *) return 1 ;;
  esac
}

skip_pass() { has_word "${PREPARE_LINT_SKIP:-}" "$1"; }
require_pass() { has_word "${PREPARE_LINT_REQUIRE:-}" "$1"; }

status=0

# Pass could not run (tool/config missing): fatal when required,
# a notice otherwise.
unavailable() {  # unavailable PASS REASON
  if require_pass "$1"; then
    echo "lint.sh: required pass '$1' cannot run: $2" >&2
    status=1
  else
    echo "== $1 skipped: $2"
  fi
}

if skip_pass invariants; then
  echo "== invariants skipped (PREPARE_LINT_SKIP)"
else
  echo "== check_invariants.py ${PATHS[*]}"
  if ! python3 tools/check_invariants.py "${PATHS[@]}"; then
    status=1
  fi
fi

mapfile -t cpp_files < <(find "${PATHS[@]}" -name '*.cpp' | sort)

if skip_pass thread-safety; then
  echo "== thread-safety skipped (PREPARE_LINT_SKIP)"
elif ! command -v "$CLANG_BIN" > /dev/null 2>&1; then
  unavailable thread-safety "$CLANG_BIN not installed"
else
  echo "== thread-safety ($CLANG_BIN -Wthread-safety, ${#cpp_files[@]} files)"
  ts_status=0
  for f in "${cpp_files[@]}"; do
    if ! "$CLANG_BIN" -fsyntax-only -std=c++20 -Isrc \
        -Wthread-safety -Werror=thread-safety "$f"; then
      ts_status=1
    fi
  done
  if [ $ts_status -ne 0 ]; then
    status=1
  fi
fi

if skip_pass clang-tidy; then
  echo "== clang-tidy skipped (PREPARE_LINT_SKIP)"
elif ! command -v "$CLANG_TIDY_BIN" > /dev/null 2>&1; then
  unavailable clang-tidy "$CLANG_TIDY_BIN not installed"
elif [ ! -f "$build_dir/compile_commands.json" ]; then
  unavailable clang-tidy "no $build_dir/compile_commands.json (run: cmake -B $build_dir -S .)"
else
  echo "== clang-tidy ($CLANG_TIDY_BIN, ${#cpp_files[@]} files, config .clang-tidy)"
  if ! "$CLANG_TIDY_BIN" -p "$build_dir" --quiet --warnings-as-errors='*' \
      "${cpp_files[@]}"; then
    status=1
  fi
fi

if skip_pass analyze; then
  echo "== analyze skipped (PREPARE_LINT_SKIP)"
elif [ ! -f "$build_dir/compile_commands.json" ]; then
  unavailable analyze "no $build_dir/compile_commands.json (run: cmake -B $build_dir -S .)"
else
  echo "== prepare_analyze.py ${PATHS[*]}"
  python3 tools/prepare_analyze.py --build-dir "$build_dir" "${PATHS[@]}"
  analyze_rc=$?
  if [ $analyze_rc -eq 77 ]; then
    unavailable analyze "clang python bindings / libclang not installed"
  elif [ $analyze_rc -ne 0 ]; then
    status=1
  fi
fi

exit $status
