#!/usr/bin/env python3
"""Post-run model-quality report from an observability JSONL trace.

Reads a schema-v3/v4 trace (src/obs/trace_export.h) written by
`prepare_cli --obs-out FILE.jsonl` and prints, for the humans running
the experiment:

  1. the per-horizon calibration table — for each look-ahead step
     1..k: resolved predictions, realized-abnormal rate, mean predicted
     probability, Brier score, and log-loss;
  2. the pooled reliability diagram as text — per predicted-probability
     bin, how often the prediction actually realized (a calibrated
     model has hit_rate ~ bin midpoint);
  3. the drift timeline — every model_drift evaluation in trace order
     with its kind, trigger state, and headline values;
  4. the top-drifting attributes — occupancy-shift records aggregated
     per attribute, worst first;
  5. the episodes section (schema v4, `--record-episodes` runs) —
     flight-recorder bundle count by outcome, the rank-weighted top
     contributing attributes across all captured diagnoses, and a
     summary of any `--what-if` counterfactual divergences.

Usage: prepare_report.py FILE.jsonl

Exits 0 on success, 1 when the trace is unreadable or carries no
calibration records (an introspection run that produced nothing to
report is a broken run, same loud-fail contract as the other tools).
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path


def _num(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def load_records(path: Path) -> list[dict]:
    records = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            print(f"{path}:{lineno}: invalid JSON: {exc}", file=sys.stderr)
            continue
        if isinstance(obj, dict):
            records.append(obj)
    return records


def bin_counts(record: dict) -> list[tuple[int, float, float]]:
    """(bin index, n, hits) triples from a calibration record."""
    out = []
    b = 0
    while f"bin{b}_n" in record:
        n = record.get(f"bin{b}_n")
        hits = record.get(f"bin{b}_hits")
        out.append((b, n if _num(n) else 0.0, hits if _num(hits) else 0.0))
        b += 1
    return out


def print_calibration(cals: list[dict]) -> None:
    print("per-horizon calibration:")
    print(f"  {'step':>4} {'horizon_s':>9} {'n':>7} {'hit_rate':>8} "
          f"{'p_mean':>7} {'brier':>8} {'logloss':>8}")
    for record in sorted(cals, key=lambda r: r.get("horizon_step", 0)):
        n = record.get("n", 0)
        hits = record.get("hits", 0)
        rate = hits / n if n else 0.0
        print(f"  {record.get('horizon_step', 0):>4} "
              f"{record.get('horizon_s', 0.0):>9.1f} {n:>7} {rate:>8.4f} "
              f"{record.get('p_mean', 0.0):>7.4f} "
              f"{record.get('brier', 0.0):>8.5f} "
              f"{record.get('logloss', 0.0):>8.5f}")


def print_reliability(cals: list[dict]) -> None:
    pooled: dict[int, list[float]] = {}
    for record in cals:
        for b, n, hits in bin_counts(record):
            entry = pooled.setdefault(b, [0.0, 0.0])
            entry[0] += n
            entry[1] += hits
    if not pooled:
        print("reliability: no bin counts in the trace")
        return
    bins = max(pooled) + 1
    print("reliability (pooled across horizons):")
    print(f"  {'p bucket':>14} {'n':>7} {'hit_rate':>8} {'midpoint':>8}")
    for b in range(bins):
        n, hits = pooled.get(b, [0.0, 0.0])
        rate = hits / n if n else 0.0
        lo, hi = b / bins, (b + 1) / bins
        print(f"  [{lo:>5.2f},{hi:>5.2f}) {int(n):>7} {rate:>8.4f} "
              f"{(lo + hi) / 2:>8.2f}")


def print_drift(drifts: list[dict]) -> None:
    if not drifts:
        print("drift timeline: no model_drift records")
        return
    print("drift timeline:")
    for record in drifts:
        kind = record.get("kind", "?")
        mark = "TRIGGERED" if record.get("triggered") == 1 else "ok"
        if kind == "calibration":
            detail = (f"brier {record.get('brier_recent', 0.0):.5f} vs "
                      f"baseline {record.get('brier_baseline', 0.0):.5f}")
        else:
            detail = (f"shift_max {record.get('shift_max', 0.0):.4f} "
                      f"({record.get('attribute', '?')})")
        print(f"  t={record.get('t', 0.0):>7.1f}  {kind:<12} {mark:<9} "
              f"{detail}")
    triggered = sum(1 for r in drifts if r.get("triggered") == 1)
    print(f"  {len(drifts)} evaluation(s), {triggered} triggered")


def print_top_attributes(drifts: list[dict]) -> None:
    worst: dict[str, float] = {}
    for record in drifts:
        if record.get("kind") != "occupancy":
            continue
        attr = record.get("attribute")
        shift = record.get("shift_max")
        if isinstance(attr, str) and _num(shift):
            worst[attr] = max(worst.get(attr, 0.0), shift)
    if not worst:
        return
    print("top drifting attributes (max occupancy shift seen):")
    ranked = sorted(worst.items(), key=lambda kv: -kv[1])[:5]
    for attr, shift in ranked:
        print(f"  {attr:<16} {shift:.4f}")


def print_episodes(evidence: list[dict]) -> None:
    bundles = [r for r in evidence if r.get("kind") == "bundle"]
    if not bundles:
        return
    outcomes: dict[str, int] = {}
    for b in bundles:
        outcome = str(b.get("outcome", "?"))
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
    outcome_str = ", ".join(f"{n} {o}" for o, n in sorted(outcomes.items()))
    print(f"episodes: {len(bundles)} bundle(s) captured ({outcome_str})")

    # Top contributing attributes: the diagnosis rankings, pooled — each
    # bundle's rank-r attribute scores count - r + 1 so leading causes
    # dominate but companions still register.
    votes: dict[str, float] = {}
    for diag in (r for r in evidence if r.get("kind") == "diagnosis"):
        count = diag.get("count")
        if not isinstance(count, int):
            continue
        for r in range(1, count + 1):
            attr = diag.get(f"rank{r}_attr")
            if isinstance(attr, str):
                votes[attr] = votes.get(attr, 0.0) + (count - r + 1)
    if votes:
        ranked = sorted(votes.items(), key=lambda kv: -kv[1])[:5]
        names = ", ".join(f"{a} ({v:.0f})" for a, v in ranked)
        print(f"  top contributing attributes (rank-weighted): {names}")

    cfs = [r for r in evidence if r.get("kind") == "counterfactual"]
    if cfs:
        diverged = sum(c.get("diverged", 0) for c in cfs
                       if _num(c.get("diverged")))
        compared = sum(c.get("compared", 0) for c in cfs
                       if _num(c.get("compared")))
        print(f"  counterfactuals: {len(cfs)} what-if note(s), "
              f"{diverged}/{compared} decisions diverge")
        for c in cfs:
            detail = c.get("detail")
            if detail:
                print(f"    {c.get('trace_id', '?')} policy="
                      f"{c.get('policy', '?')}: {detail}")


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print("usage: prepare_report.py FILE.jsonl", file=sys.stderr)
        return 2
    path = Path(argv[1])
    if not path.is_file():
        print(f"{path}: no such file", file=sys.stderr)
        return 1
    records = load_records(path)
    header = records[0] if records else {}
    if header.get("record") == "run":
        print(f"model-quality report for run {header.get('run_id', '?')} "
              f"(schema {header.get('schema', '?')})")
    cals = [r for r in records if r.get("record") == "calibration"]
    drifts = [r for r in records if r.get("record") == "model_drift"]
    if not cals:
        print(f"{path}: no calibration records — was the run driven with "
              "introspection enabled (--obs-out on a prepare scheme)?",
              file=sys.stderr)
        return 1
    print_calibration(cals)
    print_reliability(cals)
    print_drift(drifts)
    print_top_attributes(drifts)
    evidence = [r for r in records if r.get("record") == "episode_evidence"]
    print_episodes(evidence)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
