#!/usr/bin/env python3
"""prepare_analyze: AST-grounded project rules for the PREPARE tree.

Complements the regex pass (check_invariants.py) and the generic
clang-tidy pass with rules that need real type and scope information,
computed from Clang's AST via the python `clang.cindex` bindings over
the build's exported compile_commands.json. The per-TU rules below run
during extraction; the interprocedural rules run over a merged
whole-program call graph (tools/prepare_callgraph.py) built from every
analyzed TU, so a contract annotated in one file is enforced against
call chains that cross translation units.

Rule catalog (v2):

  layering         Includes must follow the dependency DAG between the
                   top-level directories under src/ (ALLOWED_EDGES).
  determinism      (a) Unordered-container iteration in any TU whose
                   include closure reaches trace/span/event/metrics
                   output. (b) Wall-clock / libc randomness outside
                   src/sim/clock.* and src/obs/stage_profiler.*.
  strong-type      Public API scalars with id/index/probability/
                   duration roles must use common/units.h types.
  mutex-type       Only prepare::Mutex / prepare::MutexLock may lock.
  thread-confined  [interprocedural] No method of a type annotated
                   PREPARE_DRIVER_CONFINED (common/analyze_annotations.h)
                   — SpanTracer, ModelIntrospect, EventLog, Application,
                   StageProfiler::stages() — may be reachable from a
                   lambda handed to ThreadPool::parallel_for. Virtual
                   calls dispatch to every override; local objects
                   charge their destructors.
  hot-alloc/-lock/-io
                   [interprocedural] No allocation (operator new,
                   malloc, growing container ops, string construction,
                   std::function construction), lock acquisition
                   (prepare::Mutex, std lock vocabulary), or stdio /
                   iostream call may be reachable from a function
                   annotated PREPARE_HOT or from a parallel_for worker
                   lambda. PREPARE_CHECK failure arms are cold and
                   excluded.
  suppression      allow() comments must carry a justification.
  unused-suppression
                   allow() comments must match a diagnostic (reported
                   as warnings locally; --strict-suppressions, set in
                   CI, turns them into errors).

Suppression: a comment on the flagged line, or on a comment line
directly above it:

    // prepare-analyze: allow(RULE): reason

Because interprocedural findings anchor at the offending call site,
one allow at a primitive covers every hot root that reaches it.

Known soundness limits (documented, deliberate): implicitly-generated
special members (e.g. a defaulted copy-assignment that copies a
vector) are not modeled, and calls into repo functions whose bodies
live in TUs outside the analyzed path set end the walk — the analysis
is a conservative may-analysis over named primitives, not an escape
analysis.

Usage:
    prepare_analyze.py [--build-dir DIR] [PATH...]   # default: src
    prepare_analyze.py --fixtures [DIR]              # self-test mode

Options: --json FILE and --sarif FILE write machine-readable findings
(SARIF 2.1.0 uploads to GitHub code scanning); --strict-suppressions
promotes unused-suppression warnings to errors; --no-cache disables
the content-hashed per-TU cache in <build-dir>/prepare_analyze_cache/
(entries are keyed on the analyzer sources + parse args + file hash
and validated against the hash of every repo header the TU includes,
so CI re-analyzes only what changed).

The build dir (default $PREPARE_BUILD_DIR or ./build) must contain
compile_commands.json (configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON;
tools/lint.sh does this automatically). libclang is located via
$PREPARE_LIBCLANG, or by globbing the usual LLVM install paths. When
the clang python bindings or libclang are unavailable the script exits
77 (the ctest skip code) so local runs without LLVM degrade to a skip
while CI — which pins LLVM 18 — still enforces the pass.

Fixture mode parses each tests/analyze_fixtures/*.{h,cpp} standalone
(-std=c++20 -Isrc), scopes rules by the fixture's declared `as=` path,
runs the interprocedural rules over the fixture's own call graph
(findings outside the fixture file are dropped), audits the fixture's
suppressions strictly, and compares diagnostics against the matching
*.expected golden file.
"""

import argparse
import glob
import json
import os
import re
import shlex
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import prepare_callgraph as pcg  # noqa: E402  (needs the path insert)

EXIT_CLEAN = 0
EXIT_DIAGNOSTICS = 1
EXIT_ERROR = 2
EXIT_UNAVAILABLE = 77  # matches ctest SKIP_RETURN_CODE

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# --- rule configuration ----------------------------------------------------

# Directory layering under src/: maps each top-level dir to the set of
# dirs it may #include from (itself is always allowed). This is the
# measured dependency DAG of the tree; growing a new legitimate edge
# means updating this table in the same PR that adds the include.
ALLOWED_EDGES = {
    "common": set(),
    "obs": {"common"},
    "timeseries": {"common"},
    "workload": {"common"},
    "models": {"common"},
    "sim": {"common", "obs"},
    "faults": {"common", "sim"},
    "monitor": {"common", "sim", "timeseries"},
    "apps": {"common", "sim", "workload"},
    "core": {"apps", "common", "faults", "models", "monitor", "obs", "sim",
             "timeseries", "workload"},
    "report": {"common", "core", "monitor", "sim"},
}

# TUs whose include closure reaches one of these headers write (or can
# write) trace/span/event/metrics artifacts that CI byte-diffs across
# thread counts; unordered iteration there is a determinism bug.
OUTPUT_HEADERS = {
    "src/obs/span_tracer.h",
    "src/obs/trace_export.h",
    "src/obs/metrics.h",
    "src/obs/prom_export.h",
    "src/sim/event_log.h",
}

# Wall-clock / libc-randomness symbols (qualified names) banned outside
# TIME_ALLOWED_FILES. steady_clock is deliberately NOT here: it is
# monotonic and only used for profiler stopwatches.
BANNED_TIME_REFS = {
    "std::rand": "std::rand",
    "rand": "rand",
    "std::srand": "std::srand",
    "srand": "srand",
    "std::time": "time()",
    "time": "time()",
    "std::chrono::system_clock": "std::chrono::system_clock",
    "std::chrono::high_resolution_clock": "std::chrono::high_resolution_clock",
}
TIME_ALLOWED_FILES = (
    "src/sim/clock.h", "src/sim/clock.cpp",
    "src/obs/stage_profiler.h", "src/obs/stage_profiler.cpp",
)

# strong-type scope: public API headers of the predict->diagnose->
# prevent chain. Rule fires on public (or free) function parameters of
# raw builtin scalar type whose name matches a role below.
STRONG_TYPE_SCOPE = re.compile(
    r"^src/(models/[^/]+\.h|sim/[^/]+\.h|core/controller\.h|"
    r"core/anomaly_predictor\.h)$")

SCALAR_TYPES = {
    "int", "unsigned int", "short", "unsigned short", "long",
    "unsigned long", "long long", "unsigned long long", "float", "double",
}

ROLE_RULES = [
    (re.compile(r"^(vm_id|vmid|vm_index)$"), "VmId"),
    (re.compile(r"^(tick|ticks|tick_index|step|steps|lookahead_steps)$"),
     "TickIndex"),
    (re.compile(r"^(bin|bin_index|bin_idx|symbol)$"), "BinIndex"),
    (re.compile(r"^(p|prob|probability)$|_prob(ability)?$"), "Probability"),
    (re.compile(r"^(log_odds|logodds|l_i)$"), "LogOdds"),
    (re.compile(r"^(dt|delay)$|_(s|seconds)$"), "Seconds"),
]

# std locking vocabulary banned outside MUTEX_ALLOWED_FILE (matched on
# canonical types, so `using M = std::mutex;` cannot dodge it).
BANNED_MUTEX_TYPES = (
    "std::mutex", "std::timed_mutex", "std::recursive_mutex",
    "std::recursive_timed_mutex", "std::shared_mutex",
    "std::shared_timed_mutex", "std::lock_guard", "std::unique_lock",
    "std::scoped_lock", "std::shared_lock",
)
MUTEX_ALLOWED_FILE = "src/common/mutex.h"

# --- hot-path primitive vocabulary -----------------------------------------
# Calls into non-repo code (plus the project lock wrappers) classified
# as allocation / lock / IO primitives for the PREPARE_HOT proof. The
# anchor is always the call site, so one suppression covers every hot
# root reaching it.

CONTAINER_CLASSES = {
    "vector", "deque", "list", "forward_list", "map", "multimap", "set",
    "multiset", "unordered_map", "unordered_multimap", "unordered_set",
    "unordered_multiset", "queue", "priority_queue", "stack", "basic_string",
}
GROW_METHODS = {
    "push_back", "emplace_back", "push_front", "emplace_front", "emplace",
    "emplace_hint", "insert", "insert_or_assign", "try_emplace", "resize",
    "reserve", "assign", "append", "push", "shrink_to_fit", "operator+=",
}
MAP_SUBSCRIPT_CLASSES = {"map", "unordered_map"}

STD_MUTEX_CLASSES = {
    "mutex", "timed_mutex", "recursive_mutex", "recursive_timed_mutex",
    "shared_mutex", "shared_timed_mutex",
}
LOCK_GUARD_CLASSES = {"lock_guard", "unique_lock", "scoped_lock",
                      "shared_lock"}
CONDITION_CLASSES = {"condition_variable", "condition_variable_any"}
# The project wrappers are repo code, but the contract treats taking
# them as the primitive itself (anchored at the call site) rather than
# walking into common/mutex.h.
PREPARE_LOCK_CALLS = {
    "prepare::Mutex::lock", "prepare::Mutex::try_lock",
    "prepare::MutexLock::MutexLock",
}

STREAM_CTOR_CLASSES = {
    "basic_stringstream", "basic_ostringstream", "basic_istringstream",
    "basic_ofstream", "basic_ifstream", "basic_fstream",
}
OSTREAM_CLASSES = {"basic_ostream", "basic_istream", "basic_iostream",
                   "basic_streambuf", "basic_filebuf"}

ALLOC_FREE_FUNCS = {
    "malloc", "calloc", "realloc", "strdup", "aligned_alloc",
    "posix_memalign", "std::to_string", "std::make_unique",
    "std::make_shared",
}
IO_FREE_FUNCS = {
    "printf", "fprintf", "sprintf", "snprintf", "puts", "fputs", "fwrite",
    "fread", "fopen", "fclose", "fflush", "fgets", "fscanf", "scanf",
    "perror", "std::operator<<", "std::operator>>",
}
IO_FREE_FUNCS |= {"std::" + n for n in tuple(IO_FREE_FUNCS)
                  if "::" not in n}
LOCK_FREE_FUNCS = {
    "pthread_mutex_lock", "pthread_rwlock_rdlock", "pthread_rwlock_wrlock",
}

# PREPARE_CHECK failure arms allocate and stream, but only on the path
# that throws — every call whose callee lives under this prefix has its
# whole argument subtree excluded from the hot proof.
COLD_CALLEE_PREFIX = "prepare::detail::Check"

# --- libclang bootstrap ----------------------------------------------------


def load_cindex():
    """Returns the clang.cindex module with libclang configured, or None."""
    try:
        import clang.cindex as ci
    except ImportError:
        return None
    override = os.environ.get("PREPARE_LIBCLANG")
    candidates = [override] if override else []
    if not override:
        for pattern in (
                "/usr/lib/llvm-*/lib/libclang.so*",
                "/usr/lib/llvm-*/lib/libclang-*.so*",
                "/usr/lib/x86_64-linux-gnu/libclang-*.so*",
                "/usr/lib/x86_64-linux-gnu/libclang.so*",
                "/usr/local/lib/libclang*.so*",
        ):
            candidates.extend(sorted(glob.glob(pattern), reverse=True))
    for path in candidates:
        if not path or not os.path.exists(path):
            continue
        try:
            ci.Config.set_library_file(path)
            ci.Index.create()
            return ci
        except Exception:  # try the next candidate
            ci.Config.loaded = False
            continue
    try:  # maybe the bindings know their own library
        ci.Index.create()
        return ci
    except Exception:
        return None


# --- helpers ---------------------------------------------------------------


def rel(path):
    return os.path.relpath(os.path.abspath(path), REPO)


# First-party source roots. Build trees live inside the repo (and pull
# in _deps/ gtest etc.), so "under the repo root" alone is not enough.
SOURCE_ROOTS = ("src", "tests", "bench", "examples", "tools")


def in_repo(path):
    relpath = rel(path)
    return (not relpath.startswith("..")
            and relpath.split(os.sep, 1)[0] in SOURCE_ROOTS)


def src_layer(relpath):
    """Top-level dir under src/ for a repo-relative path, else None."""
    parts = relpath.split(os.sep)
    if len(parts) >= 2 and parts[0] == "src":
        return parts[1] if parts[1] in ALLOWED_EDGES else None
    return None


RESERVED_NS_RE = re.compile(r"^_[_A-Z0-9]")  # __1, _V2, ... (inline nss)


def qualified_name(cursor):
    parts = []
    cur = cursor
    while cur is not None and cur.kind.name != "TRANSLATION_UNIT":
        if cur.spelling and not RESERVED_NS_RE.match(cur.spelling):
            parts.append(cur.spelling)
        cur = cur.semantic_parent
    return "::".join(reversed(parts))


class RawSink:
    """Pre-suppression diagnostics for one TU, cache-serializable."""

    def __init__(self):
        self.items = []  # [path, line, rule, message, real_path-or-None]

    def add(self, path, line, rule, message, real_path=None):
        if real_path is not None and rel(real_path) == path:
            real_path = None  # redundant: the scoped path is the file
        self.items.append([path, line, rule, message, real_path])


# --- the per-TU analysis ---------------------------------------------------


class Analyzer:
    def __init__(self, ci, diags):
        self.ci = ci
        self.diags = diags  # anything with .add(path, line, rule, msg, ...)

    def analyze_tu(self, tu, main_as, real_main, restrict_to_main):
        """Runs every per-TU rule over one translation unit.

        main_as:          repo-relative path the main file is scoped as
                          (differs from the real path in fixture mode).
        real_main:        real filesystem path of the main file.
        restrict_to_main: only diagnose the main file (fixture mode).
        """
        included = self.check_layering(tu, main_as, real_main,
                                       restrict_to_main)
        reaches_output = main_as in OUTPUT_HEADERS or bool(
            included & OUTPUT_HEADERS)
        for cursor in tu.cursor.get_children():
            loc_file = cursor.location.file
            if loc_file is None:
                continue
            real = os.path.abspath(loc_file.name)
            if restrict_to_main:
                if real != os.path.abspath(real_main):
                    continue
                scoped = main_as
            else:
                if not in_repo(real):
                    continue
                scoped = rel(real)
            self.walk(cursor, scoped, real, reaches_output)

    # -- layering --

    def check_layering(self, tu, main_as, real_main, restrict_to_main):
        """Checks include edges; returns the repo-relative include set."""
        included = set()
        for inc in tu.get_includes():
            target = os.path.abspath(inc.include.name)
            if not in_repo(target):
                continue
            target_rel = rel(target)
            included.add(target_rel)
            source_file = inc.location.file
            if source_file is None:
                continue
            source_real = os.path.abspath(source_file.name)
            if source_real == os.path.abspath(real_main):
                source_rel = main_as
            elif restrict_to_main or not in_repo(source_real):
                continue
            else:
                source_rel = rel(source_real)
            src = src_layer(source_rel)
            dst = src_layer(target_rel)
            if src is None or dst is None or src == dst:
                continue  # outside src/, or an intra-layer include
            if dst not in ALLOWED_EDGES[src]:
                self.diags.add(
                    source_rel, inc.location.line, "layering",
                    "%s/ must not include %s/ (%s): allowed from %s/ are {%s}"
                    % (src, dst, target_rel, src,
                       ", ".join(sorted(ALLOWED_EDGES[src])) or "none"),
                    real_path=source_real)
        return included

    # -- recursive cursor walk for determinism / strong-type / mutex-type --

    def walk(self, cursor, scoped, real, reaches_output):
        kind = cursor.kind.name
        if kind in ("FUNCTION_DECL", "CXX_METHOD", "CONSTRUCTOR",
                    "FUNCTION_TEMPLATE"):
            self.check_strong_type(cursor, scoped, real)
        if kind == "CXX_FOR_RANGE_STMT" and reaches_output:
            self.check_unordered_walk(cursor, scoped, real)
        if kind in ("VAR_DECL", "FIELD_DECL"):
            self.check_mutex_type(cursor, scoped, real)
            if reaches_output:
                self.check_unordered_iterator(cursor, scoped, real)
        if kind in ("DECL_REF_EXPR", "TYPE_REF"):
            self.check_time_ref(cursor, scoped, real)
        for child in cursor.get_children():
            self.walk(child, scoped, real, reaches_output)

    def check_strong_type(self, cursor, scoped, real):
        if not STRONG_TYPE_SCOPE.match(scoped):
            return
        access = cursor.access_specifier.name
        if access in ("PROTECTED", "PRIVATE"):
            return  # only the public boundary is policed
        for child in cursor.get_children():
            if child.kind.name != "PARM_DECL":
                continue
            canonical = child.type.get_canonical().spelling
            if canonical.startswith("const "):
                canonical = canonical[len("const "):]
            if canonical not in SCALAR_TYPES:
                continue
            name = child.spelling
            if not name:
                continue
            for pattern, strong in ROLE_RULES:
                if pattern.search(name):
                    self.diags.add(
                        scoped, child.location.line, "strong-type",
                        "public parameter '%s %s' of %s() plays the %s role; "
                        "take prepare::%s (common/units.h) instead"
                        % (canonical, name, cursor.spelling, strong, strong),
                        real_path=real)
                    break

    def check_unordered_walk(self, cursor, scoped, real):
        for child in cursor.get_children():
            if child.kind.name == "VAR_DECL":
                continue  # the loop variable
            canonical = child.type.get_canonical().spelling
            if "unordered_map<" in canonical or "unordered_set<" in canonical:
                self.diags.add(
                    scoped, cursor.location.line, "determinism",
                    "range-for over %s in a TU that reaches trace/span/event "
                    "output: iteration order is nondeterministic; use an "
                    "ordered container or sort first"
                    % canonical.split("<")[0], real_path=real)
                return

    def check_unordered_iterator(self, cursor, scoped, real):
        canonical = cursor.type.get_canonical().spelling
        if "_Node_iterator" in canonical or "_Node_const_iterator" in canonical:
            self.diags.add(
                scoped, cursor.location.line, "determinism",
                "iterator into an unordered container in a TU that reaches "
                "trace/span/event output: iteration order is "
                "nondeterministic", real_path=real)

    def check_mutex_type(self, cursor, scoped, real):
        if scoped == MUTEX_ALLOWED_FILE:
            return
        canonical = cursor.type.get_canonical().spelling
        for banned in BANNED_MUTEX_TYPES:
            if canonical == banned or canonical.startswith(banned + "<"):
                self.diags.add(
                    scoped, cursor.location.line, "mutex-type",
                    "'%s' declared as %s: use prepare::Mutex / "
                    "prepare::MutexLock (common/mutex.h) so -Wthread-safety "
                    "sees the capability" % (cursor.spelling, banned),
                    real_path=real)
                return

    def check_time_ref(self, cursor, scoped, real):
        if scoped in TIME_ALLOWED_FILES:
            return
        ref = cursor.referenced
        if ref is None:
            return
        qname = qualified_name(ref)
        label = BANNED_TIME_REFS.get(qname)
        if label is None:
            return
        self.diags.add(
            scoped, cursor.location.line, "determinism",
            "reference to %s: wall-clock time and libc randomness are "
            "banned outside sim/clock and obs/stage_profiler (use SimClock "
            "/ prepare::Rng)" % label, real_path=real)


# --- call-graph extraction -------------------------------------------------

FN_KINDS = {"FUNCTION_DECL", "CXX_METHOD", "CONSTRUCTOR", "DESTRUCTOR",
            "CONVERSION_FUNCTION", "FUNCTION_TEMPLATE"}
CLASS_KINDS = {"CLASS_DECL", "STRUCT_DECL", "CLASS_TEMPLATE",
               "CLASS_TEMPLATE_PARTIAL_SPECIALIZATION"}


def annotations_of(cursor):
    out = set()
    for child in cursor.get_children():
        if child.kind.name == "ANNOTATE_ATTR":
            out.add(child.spelling or child.displayname)
    return out


class Extractor:
    """Builds prepare_callgraph facts for one TU.

    `scope_of` maps a real absolute path to its scoped repo-relative
    path (the fixture `as=` alias for the fixture main file), or None
    for files outside the first-party tree.
    """

    def __init__(self, scope_of):
        self.scope_of = scope_of
        self.facts = pcg.new_facts()
        self.fn_stack = []
        self.var_stack = []
        self.lambda_vars = {}  # VAR_DECL usr -> lambda fid

    def extract(self, tu):
        for cursor in tu.cursor.get_children():
            loc = cursor.location.file
            if loc is None:
                continue
            if self.scope_of(os.path.abspath(loc.name)) is None:
                continue
            self.visit(cursor)
        return self.facts

    # -- registration helpers --

    def site(self, cursor):
        loc = cursor.location
        scoped = self.scope_of(os.path.abspath(loc.file.name)) \
            if loc.file is not None else None
        return scoped, loc.line, loc.column

    def register_function(self, fid, entry):
        cur = self.facts["functions"].get(fid)
        if cur is None:
            self.facts["functions"][fid] = entry
            return
        if entry["has_body"] and not cur["has_body"]:
            cur["file"], cur["line"] = entry["file"], entry["line"]
            cur["has_body"] = True
        cur["hot"] = cur["hot"] or entry["hot"]
        cur["confined"] = cur["confined"] or entry["confined"]
        if cur.get("cls") is None:
            cur["cls"] = entry.get("cls")

    # -- the walk --

    def visit(self, cursor):
        kind = cursor.kind.name
        if kind in CLASS_KINDS:
            if cursor.is_definition():
                self.on_class(cursor)
            for child in cursor.get_children():
                self.visit(child)
            return
        if kind in FN_KINDS:
            self.on_function(cursor)
            return
        if kind == "LAMBDA_EXPR":
            self.on_lambda(cursor)
            return
        if kind == "VAR_DECL":
            self.on_var(cursor)
            return
        if kind == "CALL_EXPR":
            if self.on_call(cursor):
                return  # cold failure arm: whole subtree excluded
        elif kind == "CXX_NEW_EXPR" and self.fn_stack:
            scoped, line, _ = self.site(cursor)
            if scoped:
                self.facts["prims"].append(
                    [self.fn_stack[-1], "hot-alloc", "operator new",
                     scoped, line])
        elif kind == "CXX_DELETE_EXPR" and self.fn_stack:
            scoped, line, _ = self.site(cursor)
            if scoped:
                self.facts["prims"].append(
                    [self.fn_stack[-1], "hot-alloc", "operator delete",
                     scoped, line])
        for child in cursor.get_children():
            self.visit(child)

    def on_class(self, cursor):
        cid = cursor.get_usr()
        if not cid:
            return
        bases = []
        for child in cursor.get_children():
            if child.kind.name == "CXX_BASE_SPECIFIER":
                decl = child.type.get_declaration()
                usr = decl.get_usr() if decl is not None else None
                if usr:
                    bases.append(usr)
        cur = self.facts["classes"].setdefault(
            cid, {"name": qualified_name(cursor), "confined": False,
                  "bases": []})
        if pcg.CONFINED_ANNOTATION in annotations_of(cursor):
            cur["confined"] = True
        for base in bases:
            if base not in cur["bases"]:
                cur["bases"].append(base)

    def on_function(self, cursor):
        fid = cursor.get_usr()
        if not fid:
            return
        scoped, line, _ = self.site(cursor)
        if scoped is None:
            return
        ann = annotations_of(cursor)
        canonical = cursor.canonical
        if canonical is not None and canonical != cursor:
            ann |= annotations_of(canonical)
        parent = cursor.semantic_parent
        cls = None
        if parent is not None and parent.kind.name in CLASS_KINDS:
            cls = parent.get_usr() or None
        self.register_function(fid, {
            "name": qualified_name(cursor),
            "spelling": cursor.spelling,
            "file": scoped,
            "line": line,
            "cls": cls,
            "hot": pcg.HOT_ANNOTATION in ann,
            "confined": pcg.CONFINED_ANNOTATION in ann,
            "has_body": bool(cursor.is_definition()),
            "is_lambda": False,
        })
        if cursor.is_definition():
            self.fn_stack.append(fid)
            for child in cursor.get_children():
                self.visit(child)
            self.fn_stack.pop()

    def lambda_fid(self, cursor):
        scoped, line, col = self.site(cursor)
        if scoped is None:
            return None
        return "lambda@%s:%d:%d" % (scoped, line, col)

    def on_lambda(self, cursor):
        fid = self.lambda_fid(cursor)
        if fid is None:
            return
        scoped, line, _ = self.site(cursor)
        self.register_function(fid, {
            "name": "lambda(%s:%d)" % (scoped, line),
            "spelling": "operator()",
            "file": scoped,
            "line": line,
            "cls": None,
            "hot": False,
            "confined": False,
            "has_body": True,
            "is_lambda": True,
        })
        if self.fn_stack:
            # Conservative: defining a lambda charges the enclosing
            # function with (eventually) running it.
            self.facts["calls"].append(
                [self.fn_stack[-1], fid, scoped, line])
        if self.var_stack:
            self.lambda_vars.setdefault(self.var_stack[-1], fid)
        self.fn_stack.append(fid)
        for child in cursor.get_children():
            self.visit(child)
        self.fn_stack.pop()

    def on_var(self, cursor):
        usr = cursor.get_usr()
        self.var_stack.append(usr)
        for child in cursor.get_children():
            self.visit(child)
        self.var_stack.pop()
        # A block-scope object of a repo class type runs that class's
        # destructor when the enclosing function leaves the scope.
        if not self.fn_stack:
            return
        decl = cursor.type.get_canonical().get_declaration()
        if decl is None or decl.kind.name not in CLASS_KINDS:
            return
        loc = decl.location.file
        if loc is None or self.scope_of(os.path.abspath(loc.name)) is None:
            return
        cid = decl.get_usr()
        scoped, line, _ = self.site(cursor)
        if cid and scoped:
            self.facts["uses"].append([self.fn_stack[-1], cid, scoped, line])

    def on_call(self, cursor):
        """Handles one call expression; True = skip the whole subtree."""
        callee = cursor.referenced
        if callee is None:
            return False
        qn = qualified_name(callee)
        if qn.startswith(COLD_CALLEE_PREFIX):
            return True  # PREPARE_CHECK failure arm: cold by contract
        if callee.spelling == "parallel_for":
            parent = callee.semantic_parent
            if parent is not None and parent.spelling == "ThreadPool":
                self.find_workers(cursor)
        if self.fn_stack:
            self.record_callee(callee, qn, cursor)
        return False

    def find_workers(self, call_cursor):
        """Argument subtrees of a parallel_for call: lambdas become
        implicit hot + confinement roots, directly or through a local
        std::function / auto variable."""
        def search(node):
            kind = node.kind.name
            if kind == "LAMBDA_EXPR":
                fid = self.lambda_fid(node)
                if fid:
                    self.facts["workers"].append(fid)
                return
            if kind == "DECL_REF_EXPR":
                ref = node.referenced
                if ref is not None:
                    fid = self.lambda_vars.get(ref.get_usr())
                    if fid:
                        self.facts["workers"].append(fid)
                return
            for child in node.get_children():
                search(child)
        search(call_cursor)

    def record_callee(self, callee, qn, node):
        caller = self.fn_stack[-1]
        scoped, line, _ = self.site(node)
        if scoped is None:
            return
        ckind = callee.kind.name
        if qn in PREPARE_LOCK_CALLS:
            self.facts["prims"].append(
                [caller, "hot-lock", qn, scoped, line])
            return
        callee_loc = callee.location.file
        callee_in_repo = (
            callee_loc is not None
            and self.scope_of(os.path.abspath(callee_loc.name)) is not None)
        if callee_in_repo:
            fid = callee.get_usr()
            if not fid:
                return
            if ckind == "CXX_METHOD" and callee.is_virtual_method():
                parent = callee.semantic_parent
                cid = parent.get_usr() if parent is not None else None
                self.facts["vcalls"].append(
                    [caller, fid, cid or "", callee.spelling, scoped, line])
            else:
                self.facts["calls"].append([caller, fid, scoped, line])
            return
        prim = self.classify_primitive(callee, qn, node)
        if prim is not None:
            rule, detail = prim
            self.facts["prims"].append([caller, rule, detail, scoped, line])

    def classify_primitive(self, callee, qn, node):
        """(rule, detail) for a non-repo callee, or None if benign."""
        ckind = callee.kind.name
        parent = callee.semantic_parent
        pspell = parent.spelling if parent is not None else ""
        if ckind == "CONSTRUCTOR":
            if "&&" in callee.displayname:
                return None  # move construction does not allocate
            if pspell in LOCK_GUARD_CLASSES:
                return ("hot-lock", "std::%s construction" % pspell)
            if pspell in STREAM_CTOR_CLASSES:
                return ("hot-io", "std::%s construction" % pspell)
            if pspell == "thread":
                return ("hot-lock", "std::thread spawn")
            nargs = len(list(node.get_arguments()))
            if nargs == 0:
                return None  # default construction is allocation-free
            if pspell == "function":
                return ("hot-alloc", "std::function construction")
            if pspell == "basic_string":
                return ("hot-alloc", "std::string construction")
            if pspell in CONTAINER_CLASSES:
                return ("hot-alloc", "std::%s construction" % pspell)
            return None
        if ckind == "CXX_METHOD":
            spelling = callee.spelling
            if pspell in CONTAINER_CLASSES:
                if spelling in GROW_METHODS:
                    return ("hot-alloc", "std::%s::%s" % (pspell, spelling))
                if (spelling == "operator[]"
                        and pspell in MAP_SUBSCRIPT_CLASSES):
                    return ("hot-alloc",
                            "std::%s::operator[] (inserts)" % pspell)
                return None
            if pspell in STD_MUTEX_CLASSES and spelling in (
                    "lock", "try_lock", "lock_shared", "try_lock_shared"):
                return ("hot-lock", "std::%s::%s" % (pspell, spelling))
            if pspell in CONDITION_CLASSES and spelling.startswith("wait"):
                return ("hot-lock", "std::%s::%s" % (pspell, spelling))
            if pspell in OSTREAM_CLASSES:
                return ("hot-io", "std::%s::%s" % (pspell, spelling))
            return None
        if qn in ALLOC_FREE_FUNCS:
            return ("hot-alloc", qn + "()")
        if qn in IO_FREE_FUNCS:
            return ("hot-io", qn + "()")
        if qn in LOCK_FREE_FUNCS:
            return ("hot-lock", qn + "()")
        return None


# --- compile_commands driving ---------------------------------------------

KEEP_PREFIX = ("-I", "-D", "-std=")
KEEP_WITH_VALUE = ("-isystem", "-include", "-iquote")


def parse_args_from_entry(entry):
    if "arguments" in entry:
        tokens = list(entry["arguments"])
    else:
        tokens = shlex.split(entry["command"])
    directory = entry.get("directory", REPO)
    out = []
    i = 1  # skip the compiler itself
    while i < len(tokens):
        tok = tokens[i]
        if tok in KEEP_WITH_VALUE and i + 1 < len(tokens):
            out.extend([tok, absolutize(tokens[i + 1], directory)])
            i += 2
            continue
        if tok.startswith("-I"):
            out.append("-I" + absolutize(tok[2:], directory))
        elif any(tok.startswith(p) for p in KEEP_PREFIX):
            out.append(tok)
        i += 1
    return out


def absolutize(path, directory):
    return path if os.path.isabs(path) else os.path.join(directory, path)


# --- per-TU cache ----------------------------------------------------------


def analyzer_fingerprint():
    """Hash of the analyzer sources: any rule change invalidates."""
    chunks = []
    for name in ("prepare_analyze.py", "prepare_callgraph.py"):
        path = os.path.join(REPO, "tools", name)
        try:
            with open(path, "rb") as f:
                chunks.append(pcg.content_hash(f.read()))
        except OSError:
            chunks.append("missing:" + name)
    return pcg.content_hash("|".join(chunks))


def hash_file(path):
    try:
        with open(path, "rb") as f:
            return pcg.content_hash(f.read())
    except OSError:
        return None


class TUCache:
    """Content-hashed cache of (raw diagnostics, call-graph facts) per TU.

    An entry is keyed on the analyzer fingerprint + parse args + source
    path, and is valid only while every repo file in the TU's include
    closure still hashes to the value recorded at parse time. Raw
    (pre-suppression) diagnostics are cached so suppression comments
    are always re-applied against the current sources at report time.
    """

    def __init__(self, build_dir):
        self.dir = os.path.join(build_dir, "prepare_analyze_cache")
        self.salt = analyzer_fingerprint()
        self.hits = 0

    def key(self, source_rel, args):
        return pcg.content_hash(
            json.dumps([self.salt, source_rel, args], sort_keys=True))

    def load(self, key):
        path = os.path.join(self.dir, key + ".json")
        try:
            with open(path, encoding="utf-8") as f:
                entry = json.load(f)
        except (OSError, ValueError):
            return None
        deps = entry.get("deps", {})
        for dep_rel, digest in deps.items():
            if hash_file(os.path.join(REPO, dep_rel)) != digest:
                return None
        self.hits += 1
        return entry

    def store(self, key, entry):
        try:
            os.makedirs(self.dir, exist_ok=True)
            tmp = os.path.join(self.dir, key + ".tmp")
            with open(tmp, "w", encoding="utf-8") as f:
                json.dump(entry, f)
            os.replace(tmp, os.path.join(self.dir, key + ".json"))
        except OSError:
            pass  # caching is best-effort


def collect_deps(tu, source):
    """{repo-relative path: content hash} for the TU's include closure."""
    deps = {}
    files = {os.path.abspath(source)}
    for inc in tu.get_includes():
        files.add(os.path.abspath(inc.include.name))
    for path in files:
        if in_repo(path):
            digest = hash_file(path)
            if digest is not None:
                deps[rel(path)] = digest
    return deps


# --- tree mode -------------------------------------------------------------


def tree_scope(real_abs):
    return rel(real_abs) if in_repo(real_abs) else None


def write_outputs(diags, opts):
    if opts.json:
        pcg.dump_json(pcg.to_json(diags.items, diags.found, diags.suppressed),
                      opts.json)
    if opts.sarif:
        pcg.dump_json(pcg.to_sarif(diags.items), opts.sarif)


def run_tree(ci, build_dir, paths, opts):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        sys.stderr.write("prepare_analyze: %s not found (configure with "
                         "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)\n" % db_path)
        return EXIT_ERROR
    with open(db_path, encoding="utf-8") as f:
        entries = json.load(f)

    wanted = [os.path.abspath(os.path.join(REPO, p)) for p in paths]
    diags = pcg.Diagnostics()
    cache = None if opts.no_cache else TUCache(build_dir)
    graph = pcg.CallGraph()
    dep_files = {}  # scoped path -> readable path (both repo-relative here)
    analyzer = None
    index = None
    analyzed = 0
    for entry in entries:
        source = absolutize(entry["file"], entry.get("directory", REPO))
        source = os.path.abspath(source)
        if not any(source == w or source.startswith(w + os.sep)
                   for w in wanted):
            continue
        args = parse_args_from_entry(entry) + ["-x", "c++"]
        source_rel = rel(source)
        cached = None
        key = None
        if cache is not None:
            key = cache.key(source_rel, args)
            cached = cache.load(key)
        if cached is not None:
            raw = cached["raw"]
            facts = cached["facts"]
            deps = cached["deps"]
        else:
            if index is None:
                index = ci.Index.create()
                analyzer = Analyzer(ci, None)
            try:
                tu = index.parse(
                    source, args=args,
                    options=ci.TranslationUnit
                    .PARSE_DETAILED_PROCESSING_RECORD)
            except ci.TranslationUnitLoadError as err:
                sys.stderr.write("prepare_analyze: cannot parse %s: %s\n"
                                 % (source_rel, err))
                return EXIT_ERROR
            fatal = [d for d in tu.diagnostics if d.severity >= d.Fatal]
            if fatal:
                sys.stderr.write("prepare_analyze: %s: %s\n"
                                 % (source_rel, fatal[0].spelling))
                return EXIT_ERROR
            sink = RawSink()
            analyzer.diags = sink
            analyzer.analyze_tu(tu, source_rel, source,
                                restrict_to_main=False)
            facts = Extractor(tree_scope).extract(tu)
            deps = collect_deps(tu, source)
            raw = sink.items
            if cache is not None:
                cache.store(key, {"deps": deps, "raw": raw, "facts": facts})
        for item in raw:
            diags.add(*item)
        graph.add_facts(facts)
        for dep in deps:
            dep_files[dep] = dep
        analyzed += 1

    if analyzed == 0:
        sys.stderr.write("prepare_analyze: no translation units under: %s\n"
                         % " ".join(paths))
        return EXIT_ERROR

    graph.finalize()
    for finding in graph.confinement_findings() + graph.hot_findings():
        diags.add(finding["file"], finding["line"], finding["rule"],
                  finding["message"])

    unused = diags.unused_suppressions(dep_files)
    if opts.strict_suppressions:
        for item in unused:
            diags.items.append(item)
            diags.found["unused-suppression"] = (
                diags.found.get("unused-suppression", 0) + 1)
    else:
        for path, line, rule, message in unused:
            sys.stderr.write("%s:%d: warning: [%s] %s\n"
                             % (path, line, rule, message))

    diags.report()
    write_outputs(diags, opts)
    if not opts.no_summary:
        rows = diags.summary_lines()
        if rows:
            print("prepare_analyze: per-rule summary:")
            for row in rows:
                print(row)
    cached_note = " (%d cached)" % cache.hits if cache is not None else ""
    if diags.items:
        sys.stderr.write("prepare_analyze: %d diagnostic(s) in %d TU(s)%s\n"
                         % (len(diags.items), analyzed, cached_note))
        return EXIT_DIAGNOSTICS
    print("prepare_analyze: %d TU(s) clean%s" % (analyzed, cached_note))
    return EXIT_CLEAN


# --- fixture (self-test) mode ----------------------------------------------

FIXTURE_AS_RE = re.compile(r"//\s*prepare-analyze-fixture:\s*as=(\S+)")


def run_fixtures(ci, fixture_dir):
    fixtures = sorted(
        glob.glob(os.path.join(fixture_dir, "*.cpp")) +
        glob.glob(os.path.join(fixture_dir, "*.h")))
    if not fixtures:
        sys.stderr.write("prepare_analyze: no fixtures in %s\n" % fixture_dir)
        return EXIT_ERROR

    index = ci.Index.create()
    failures = 0
    for path in fixtures:
        with open(path, encoding="utf-8") as f:
            first = f.readline()
        m = FIXTURE_AS_RE.search(first)
        if not m:
            sys.stderr.write("%s: missing `// prepare-analyze-fixture: "
                             "as=src/...` directive on line 1\n" % path)
            failures += 1
            continue
        main_as = m.group(1)
        expected_path = os.path.splitext(path)[0] + ".expected"
        if not os.path.exists(expected_path):
            sys.stderr.write("%s: missing golden file %s\n"
                             % (path, expected_path))
            failures += 1
            continue
        expected = set()
        with open(expected_path, encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if line and not line.startswith("#"):
                    lineno, rule = line.split(":", 1)
                    expected.add((int(lineno), rule.strip()))

        args = ["-x", "c++", "-std=c++20", "-I" + os.path.join(REPO, "src")]
        tu = index.parse(
            path, args=args,
            options=ci.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)
        fatal = [d for d in tu.diagnostics if d.severity >= d.Error]
        if fatal:
            sys.stderr.write("%s: fixture does not parse: %s\n"
                             % (path, fatal[0].spelling))
            failures += 1
            continue

        real_main = os.path.abspath(path)

        def fixture_scope(real_abs, _main=real_main, _as=main_as):
            if real_abs == _main:
                return _as
            return rel(real_abs) if in_repo(real_abs) else None

        diags = pcg.Diagnostics()
        sink = RawSink()
        Analyzer(ci, sink).analyze_tu(tu, main_as, path,
                                      restrict_to_main=True)
        for item in sink.items:
            diags.add(*item)
        graph = pcg.CallGraph()
        graph.add_facts(Extractor(fixture_scope).extract(tu))
        graph.finalize()
        for finding in graph.confinement_findings() + graph.hot_findings():
            if finding["file"] != main_as:
                continue  # keep goldens scoped to the fixture file
            diags.add(finding["file"], finding["line"], finding["rule"],
                      finding["message"], real_path=path)
        # Fixtures audit their suppressions strictly, so the unused-
        # suppression rule is itself golden-tested.
        for item in diags.unused_suppressions({main_as: path}):
            diags.items.append(item)

        actual = set((line, rule) for _, line, rule, _ in diags.items)
        if actual != expected:
            failures += 1
            sys.stderr.write("FAIL %s (as %s)\n" % (os.path.basename(path),
                                                    main_as))
            for line, rule in sorted(expected - actual):
                sys.stderr.write("  missing expected %d:%s\n" % (line, rule))
            for line, rule in sorted(actual - expected):
                sys.stderr.write("  unexpected %d:%s\n" % (line, rule))
            for item in sorted(diags.items):
                sys.stderr.write("  got %s:%d: [%s] %s\n" % item)
        else:
            print("ok %s (%d diagnostic(s) as expected)"
                  % (os.path.basename(path), len(expected)))

    if failures:
        sys.stderr.write("prepare_analyze: %d fixture failure(s)\n" % failures)
        return EXIT_DIAGNOSTICS
    print("prepare_analyze: all %d fixtures pass" % len(fixtures))
    return EXIT_CLEAN


# --- entry point -----------------------------------------------------------


def main():
    parser = argparse.ArgumentParser(
        description="AST-grounded PREPARE project rules (see module "
                    "docstring for the rule catalog)")
    parser.add_argument("paths", nargs="*", default=None,
                        help="repo-relative dirs/files to analyze "
                             "(default: src)")
    parser.add_argument("--build-dir",
                        default=os.environ.get("PREPARE_BUILD_DIR", "build"),
                        help="build dir containing compile_commands.json")
    parser.add_argument("--fixtures", nargs="?", const="tests/analyze_fixtures",
                        default=None, metavar="DIR",
                        help="run the self-test fixtures instead of the tree")
    parser.add_argument("--json", metavar="FILE",
                        help="write findings as JSON")
    parser.add_argument("--sarif", metavar="FILE",
                        help="write findings as SARIF 2.1.0")
    parser.add_argument("--strict-suppressions", action="store_true",
                        help="unused allow() comments are errors (CI)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the per-TU analysis cache")
    parser.add_argument("--no-summary", action="store_true",
                        help="skip the per-rule summary table")
    opts = parser.parse_args()

    sys.setrecursionlimit(10000)  # the cursor walk recurses per AST node
    ci = load_cindex()
    if ci is None:
        sys.stderr.write(
            "prepare_analyze: clang python bindings / libclang unavailable; "
            "skipping (install python3-clang + libclang, or set "
            "PREPARE_LIBCLANG)\n")
        return EXIT_UNAVAILABLE

    os.chdir(REPO)
    if opts.fixtures is not None:
        return run_fixtures(ci, opts.fixtures)
    return run_tree(ci, opts.build_dir, opts.paths or ["src"], opts)


if __name__ == "__main__":
    sys.exit(main())
