#!/usr/bin/env python3
"""prepare_analyze: AST-grounded project rules for the PREPARE tree.

Complements the regex pass (check_invariants.py) and the generic
clang-tidy pass with rules that need real type and scope information,
computed from Clang's AST via the python `clang.cindex` bindings over
the build's exported compile_commands.json.

Rule catalog (v1):

  layering      Includes must follow the dependency DAG between the
                top-level directories under src/ (see ALLOWED_EDGES).
                No upward or sideways edges: e.g. models/ must not
                include core/, sim/ must not include monitor/.
  determinism   (a) Range-for or iterator walks over
                std::unordered_{map,set} are flagged in any TU whose
                include closure reaches trace/span/event/metrics
                output — unordered iteration order would leak
                nondeterminism into artifacts that CI diffs across
                thread counts. (b) Wall-clock and libc randomness
                (std::rand/srand, time(), system_clock,
                high_resolution_clock) are banned everywhere except
                src/sim/clock.* and src/obs/stage_profiler.*.
  strong-type   Public functions in src/models/*.h, src/sim/*.h and
                the controller/predictor headers may not take raw
                int/size_t/double parameters whose names denote an
                id/index/probability/duration role — use the strong
                typedefs from common/units.h (VmId, TickIndex,
                BinIndex, Probability, LogOdds, Seconds).
  mutex-type    Only prepare::Mutex / prepare::MutexLock may be used
                for locking; any std:: mutex or lock type outside
                src/common/mutex.h is flagged. AST-based: a typedef or
                alias of std::mutex cannot dodge it.

Suppression: append a trailing comment to the flagged line:

    // prepare-analyze: allow(RULE): reason

The reason is mandatory; an allow() without one is itself a
diagnostic. Diagnostics print as `file:line: [rule] message` and the
exit status is 1 when any survive, 0 on a clean tree.

Usage:
    prepare_analyze.py [--build-dir DIR] [PATH...]   # default: src
    prepare_analyze.py --fixtures [DIR]              # self-test mode

The build dir (default $PREPARE_BUILD_DIR or ./build) must contain
compile_commands.json (configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON;
tools/lint.sh does this automatically). libclang is located via
$PREPARE_LIBCLANG, or by globbing the usual LLVM install paths. When
the clang python bindings or libclang are unavailable the script exits
77 (the ctest skip code) so local runs without LLVM degrade to a skip
while CI — which pins LLVM 18 — still enforces the pass.

Fixture mode parses each tests/analyze_fixtures/*.{h,cpp} standalone
(-std=c++20 -Isrc), scopes rules by the fixture's declared `as=` path,
and compares diagnostics against the matching *.expected golden file.
"""

import argparse
import glob
import json
import os
import re
import shlex
import sys

EXIT_CLEAN = 0
EXIT_DIAGNOSTICS = 1
EXIT_ERROR = 2
EXIT_UNAVAILABLE = 77  # matches ctest SKIP_RETURN_CODE

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# --- rule configuration ----------------------------------------------------

# Directory layering under src/: maps each top-level dir to the set of
# dirs it may #include from (itself is always allowed). This is the
# measured dependency DAG of the tree; growing a new legitimate edge
# means updating this table in the same PR that adds the include.
ALLOWED_EDGES = {
    "common": set(),
    "obs": {"common"},
    "timeseries": {"common"},
    "workload": {"common"},
    "models": {"common"},
    "sim": {"common", "obs"},
    "faults": {"common", "sim"},
    "monitor": {"common", "sim", "timeseries"},
    "apps": {"common", "sim", "workload"},
    "core": {"apps", "common", "faults", "models", "monitor", "obs", "sim",
             "timeseries", "workload"},
    "report": {"common", "core", "monitor", "sim"},
}

# TUs whose include closure reaches one of these headers write (or can
# write) trace/span/event/metrics artifacts that CI byte-diffs across
# thread counts; unordered iteration there is a determinism bug.
OUTPUT_HEADERS = {
    "src/obs/span_tracer.h",
    "src/obs/trace_export.h",
    "src/obs/metrics.h",
    "src/obs/prom_export.h",
    "src/sim/event_log.h",
}

# Wall-clock / libc-randomness symbols (qualified names) banned outside
# TIME_ALLOWED_FILES. steady_clock is deliberately NOT here: it is
# monotonic and only used for profiler stopwatches.
BANNED_TIME_REFS = {
    "std::rand": "std::rand",
    "rand": "rand",
    "std::srand": "std::srand",
    "srand": "srand",
    "std::time": "time()",
    "time": "time()",
    "std::chrono::system_clock": "std::chrono::system_clock",
    "std::chrono::high_resolution_clock": "std::chrono::high_resolution_clock",
}
TIME_ALLOWED_FILES = (
    "src/sim/clock.h", "src/sim/clock.cpp",
    "src/obs/stage_profiler.h", "src/obs/stage_profiler.cpp",
)

# strong-type scope: public API headers of the predict->diagnose->
# prevent chain. Rule fires on public (or free) function parameters of
# raw builtin scalar type whose name matches a role below.
STRONG_TYPE_SCOPE = re.compile(
    r"^src/(models/[^/]+\.h|sim/[^/]+\.h|core/controller\.h|"
    r"core/anomaly_predictor\.h)$")

SCALAR_TYPES = {
    "int", "unsigned int", "short", "unsigned short", "long",
    "unsigned long", "long long", "unsigned long long", "float", "double",
}

ROLE_RULES = [
    (re.compile(r"^(vm_id|vmid|vm_index)$"), "VmId"),
    (re.compile(r"^(tick|ticks|tick_index|step|steps|lookahead_steps)$"),
     "TickIndex"),
    (re.compile(r"^(bin|bin_index|bin_idx|symbol)$"), "BinIndex"),
    (re.compile(r"^(p|prob|probability)$|_prob(ability)?$"), "Probability"),
    (re.compile(r"^(log_odds|logodds|l_i)$"), "LogOdds"),
    (re.compile(r"^(dt|delay)$|_(s|seconds)$"), "Seconds"),
]

# std locking vocabulary banned outside MUTEX_ALLOWED_FILE (matched on
# canonical types, so `using M = std::mutex;` cannot dodge it).
BANNED_MUTEX_TYPES = (
    "std::mutex", "std::timed_mutex", "std::recursive_mutex",
    "std::recursive_timed_mutex", "std::shared_mutex",
    "std::shared_timed_mutex", "std::lock_guard", "std::unique_lock",
    "std::scoped_lock", "std::shared_lock",
)
MUTEX_ALLOWED_FILE = "src/common/mutex.h"

SUPPRESS_RE = re.compile(
    r"//\s*prepare-analyze:\s*allow\(([a-z-]+)\)\s*(?::\s*(\S.*))?")

# --- libclang bootstrap ----------------------------------------------------


def load_cindex():
    """Returns the clang.cindex module with libclang configured, or None."""
    try:
        import clang.cindex as ci
    except ImportError:
        return None
    override = os.environ.get("PREPARE_LIBCLANG")
    candidates = [override] if override else []
    if not override:
        for pattern in (
                "/usr/lib/llvm-*/lib/libclang.so*",
                "/usr/lib/llvm-*/lib/libclang-*.so*",
                "/usr/lib/x86_64-linux-gnu/libclang-*.so*",
                "/usr/lib/x86_64-linux-gnu/libclang.so*",
                "/usr/local/lib/libclang*.so*",
        ):
            candidates.extend(sorted(glob.glob(pattern), reverse=True))
    for path in candidates:
        if not path or not os.path.exists(path):
            continue
        try:
            ci.Config.set_library_file(path)
            ci.Index.create()
            return ci
        except Exception:  # try the next candidate
            ci.Config.loaded = False
            continue
    try:  # maybe the bindings know their own library
        ci.Index.create()
        return ci
    except Exception:
        return None


# --- helpers ---------------------------------------------------------------


def rel(path):
    return os.path.relpath(os.path.abspath(path), REPO)


# First-party source roots. Build trees live inside the repo (and pull
# in _deps/ gtest etc.), so "under the repo root" alone is not enough.
SOURCE_ROOTS = ("src", "tests", "bench", "examples", "tools")


def in_repo(path):
    relpath = rel(path)
    return (not relpath.startswith("..")
            and relpath.split(os.sep, 1)[0] in SOURCE_ROOTS)


def src_layer(relpath):
    """Top-level dir under src/ for a repo-relative path, else None."""
    parts = relpath.split(os.sep)
    if len(parts) >= 2 and parts[0] == "src":
        return parts[1] if parts[1] in ALLOWED_EDGES else None
    return None


RESERVED_NS_RE = re.compile(r"^_[_A-Z0-9]")  # __1, _V2, ... (inline nss)


def qualified_name(cursor):
    parts = []
    cur = cursor
    while cur is not None and cur.kind.name != "TRANSLATION_UNIT":
        if cur.spelling and not RESERVED_NS_RE.match(cur.spelling):
            parts.append(cur.spelling)
        cur = cur.semantic_parent
    return "::".join(reversed(parts))


class SourceCache:
    def __init__(self):
        self._lines = {}

    def line(self, path, number):
        if path not in self._lines:
            try:
                with open(path, encoding="utf-8", errors="replace") as f:
                    self._lines[path] = f.readlines()
            except OSError:
                self._lines[path] = []
        lines = self._lines[path]
        return lines[number - 1] if 0 < number <= len(lines) else ""


class Diagnostics:
    """Dedups across TUs and applies line-comment suppressions."""

    def __init__(self):
        self._seen = set()
        self.items = []  # (file, line, rule, message)
        self._sources = SourceCache()

    def add(self, path, line, rule, message, real_path=None):
        key = (path, line, rule)
        if key in self._seen:
            return
        self._seen.add(key)
        text = self._sources.line(real_path or path, line)
        m = SUPPRESS_RE.search(text)
        if m and m.group(1) == rule:
            if m.group(2):
                return  # suppressed with a justification
            message = ("allow(%s) needs a justification: "
                       "`// prepare-analyze: allow(%s): reason`" % (rule, rule))
            rule = "suppression"
        self.items.append((path, line, rule, message))

    def report(self, out=sys.stdout):
        for path, line, rule, message in sorted(self.items):
            out.write("%s:%d: [%s] %s\n" % (path, line, rule, message))


# --- the analysis proper ---------------------------------------------------


class Analyzer:
    def __init__(self, ci, diags):
        self.ci = ci
        self.diags = diags

    def analyze_tu(self, tu, main_as, real_main, restrict_to_main):
        """Runs every rule over one translation unit.

        main_as:          repo-relative path the main file is scoped as
                          (differs from the real path in fixture mode).
        real_main:        real filesystem path of the main file.
        restrict_to_main: only diagnose the main file (fixture mode).
        """
        included = self.check_layering(tu, main_as, real_main,
                                       restrict_to_main)
        reaches_output = main_as in OUTPUT_HEADERS or bool(
            included & OUTPUT_HEADERS)
        for cursor in tu.cursor.get_children():
            loc_file = cursor.location.file
            if loc_file is None:
                continue
            real = os.path.abspath(loc_file.name)
            if restrict_to_main:
                if real != os.path.abspath(real_main):
                    continue
                scoped = main_as
            else:
                if not in_repo(real):
                    continue
                scoped = rel(real)
            self.walk(cursor, scoped, real, reaches_output)

    # -- layering --

    def check_layering(self, tu, main_as, real_main, restrict_to_main):
        """Checks include edges; returns the repo-relative include set."""
        included = set()
        for inc in tu.get_includes():
            target = os.path.abspath(inc.include.name)
            if not in_repo(target):
                continue
            target_rel = rel(target)
            included.add(target_rel)
            source_file = inc.location.file
            if source_file is None:
                continue
            source_real = os.path.abspath(source_file.name)
            if source_real == os.path.abspath(real_main):
                source_rel = main_as
            elif restrict_to_main or not in_repo(source_real):
                continue
            else:
                source_rel = rel(source_real)
            src = src_layer(source_rel)
            dst = src_layer(target_rel)
            if src is None or dst is None or src == dst:
                continue  # outside src/, or an intra-layer include
            if dst not in ALLOWED_EDGES[src]:
                self.diags.add(
                    source_rel, inc.location.line, "layering",
                    "%s/ must not include %s/ (%s): allowed from %s/ are {%s}"
                    % (src, dst, target_rel, src,
                       ", ".join(sorted(ALLOWED_EDGES[src])) or "none"),
                    real_path=source_real)
        return included

    # -- recursive cursor walk for determinism / strong-type / mutex-type --

    def walk(self, cursor, scoped, real, reaches_output):
        kind = cursor.kind.name
        if kind in ("FUNCTION_DECL", "CXX_METHOD", "CONSTRUCTOR",
                    "FUNCTION_TEMPLATE"):
            self.check_strong_type(cursor, scoped, real)
        if kind == "CXX_FOR_RANGE_STMT" and reaches_output:
            self.check_unordered_walk(cursor, scoped, real)
        if kind in ("VAR_DECL", "FIELD_DECL"):
            self.check_mutex_type(cursor, scoped, real)
            if reaches_output:
                self.check_unordered_iterator(cursor, scoped, real)
        if kind in ("DECL_REF_EXPR", "TYPE_REF"):
            self.check_time_ref(cursor, scoped, real)
        for child in cursor.get_children():
            self.walk(child, scoped, real, reaches_output)

    def check_strong_type(self, cursor, scoped, real):
        if not STRONG_TYPE_SCOPE.match(scoped):
            return
        access = cursor.access_specifier.name
        if access in ("PROTECTED", "PRIVATE"):
            return  # only the public boundary is policed
        for child in cursor.get_children():
            if child.kind.name != "PARM_DECL":
                continue
            canonical = child.type.get_canonical().spelling
            if canonical.startswith("const "):
                canonical = canonical[len("const "):]
            if canonical not in SCALAR_TYPES:
                continue
            name = child.spelling
            if not name:
                continue
            for pattern, strong in ROLE_RULES:
                if pattern.search(name):
                    self.diags.add(
                        scoped, child.location.line, "strong-type",
                        "public parameter '%s %s' of %s() plays the %s role; "
                        "take prepare::%s (common/units.h) instead"
                        % (canonical, name, cursor.spelling, strong, strong),
                        real_path=real)
                    break

    def check_unordered_walk(self, cursor, scoped, real):
        for child in cursor.get_children():
            if child.kind.name == "VAR_DECL":
                continue  # the loop variable
            canonical = child.type.get_canonical().spelling
            if "unordered_map<" in canonical or "unordered_set<" in canonical:
                self.diags.add(
                    scoped, cursor.location.line, "determinism",
                    "range-for over %s in a TU that reaches trace/span/event "
                    "output: iteration order is nondeterministic; use an "
                    "ordered container or sort first"
                    % canonical.split("<")[0], real_path=real)
                return

    def check_unordered_iterator(self, cursor, scoped, real):
        canonical = cursor.type.get_canonical().spelling
        if "_Node_iterator" in canonical or "_Node_const_iterator" in canonical:
            self.diags.add(
                scoped, cursor.location.line, "determinism",
                "iterator into an unordered container in a TU that reaches "
                "trace/span/event output: iteration order is "
                "nondeterministic", real_path=real)

    def check_mutex_type(self, cursor, scoped, real):
        if scoped == MUTEX_ALLOWED_FILE:
            return
        canonical = cursor.type.get_canonical().spelling
        for banned in BANNED_MUTEX_TYPES:
            if canonical == banned or canonical.startswith(banned + "<"):
                self.diags.add(
                    scoped, cursor.location.line, "mutex-type",
                    "'%s' declared as %s: use prepare::Mutex / "
                    "prepare::MutexLock (common/mutex.h) so -Wthread-safety "
                    "sees the capability" % (cursor.spelling, banned),
                    real_path=real)
                return

    def check_time_ref(self, cursor, scoped, real):
        if scoped in TIME_ALLOWED_FILES:
            return
        ref = cursor.referenced
        if ref is None:
            return
        qname = qualified_name(ref)
        label = BANNED_TIME_REFS.get(qname)
        if label is None:
            return
        self.diags.add(
            scoped, cursor.location.line, "determinism",
            "reference to %s: wall-clock time and libc randomness are "
            "banned outside sim/clock and obs/stage_profiler (use SimClock "
            "/ prepare::Rng)" % label, real_path=real)


# --- compile_commands driving ---------------------------------------------

KEEP_PREFIX = ("-I", "-D", "-std=")
KEEP_WITH_VALUE = ("-isystem", "-include", "-iquote")


def parse_args_from_entry(entry):
    if "arguments" in entry:
        tokens = list(entry["arguments"])
    else:
        tokens = shlex.split(entry["command"])
    directory = entry.get("directory", REPO)
    out = []
    i = 1  # skip the compiler itself
    while i < len(tokens):
        tok = tokens[i]
        if tok in KEEP_WITH_VALUE and i + 1 < len(tokens):
            out.extend([tok, absolutize(tokens[i + 1], directory)])
            i += 2
            continue
        if tok.startswith("-I"):
            out.append("-I" + absolutize(tok[2:], directory))
        elif any(tok.startswith(p) for p in KEEP_PREFIX):
            out.append(tok)
        i += 1
    return out


def absolutize(path, directory):
    return path if os.path.isabs(path) else os.path.join(directory, path)


def run_tree(ci, build_dir, paths):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        sys.stderr.write("prepare_analyze: %s not found (configure with "
                         "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)\n" % db_path)
        return EXIT_ERROR
    with open(db_path, encoding="utf-8") as f:
        entries = json.load(f)

    wanted = [os.path.abspath(os.path.join(REPO, p)) for p in paths]
    diags = Diagnostics()
    analyzer = Analyzer(ci, diags)
    index = ci.Index.create()
    analyzed = 0
    for entry in entries:
        source = absolutize(entry["file"], entry.get("directory", REPO))
        source = os.path.abspath(source)
        if not any(source == w or source.startswith(w + os.sep)
                   for w in wanted):
            continue
        args = parse_args_from_entry(entry) + ["-x", "c++"]
        try:
            tu = index.parse(
                source, args=args,
                options=ci.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)
        except ci.TranslationUnitLoadError as err:
            sys.stderr.write("prepare_analyze: cannot parse %s: %s\n"
                             % (rel(source), err))
            return EXIT_ERROR
        fatal = [d for d in tu.diagnostics if d.severity >= d.Fatal]
        if fatal:
            sys.stderr.write("prepare_analyze: %s: %s\n"
                             % (rel(source), fatal[0].spelling))
            return EXIT_ERROR
        analyzer.analyze_tu(tu, rel(source), source, restrict_to_main=False)
        analyzed += 1

    if analyzed == 0:
        sys.stderr.write("prepare_analyze: no translation units under: %s\n"
                         % " ".join(paths))
        return EXIT_ERROR
    diags.report()
    if diags.items:
        sys.stderr.write("prepare_analyze: %d diagnostic(s) in %d TU(s)\n"
                         % (len(diags.items), analyzed))
        return EXIT_DIAGNOSTICS
    print("prepare_analyze: %d TU(s) clean" % analyzed)
    return EXIT_CLEAN


# --- fixture (self-test) mode ----------------------------------------------

FIXTURE_AS_RE = re.compile(r"//\s*prepare-analyze-fixture:\s*as=(\S+)")


def run_fixtures(ci, fixture_dir):
    fixtures = sorted(
        glob.glob(os.path.join(fixture_dir, "*.cpp")) +
        glob.glob(os.path.join(fixture_dir, "*.h")))
    if not fixtures:
        sys.stderr.write("prepare_analyze: no fixtures in %s\n" % fixture_dir)
        return EXIT_ERROR

    index = ci.Index.create()
    failures = 0
    for path in fixtures:
        with open(path, encoding="utf-8") as f:
            first = f.readline()
        m = FIXTURE_AS_RE.search(first)
        if not m:
            sys.stderr.write("%s: missing `// prepare-analyze-fixture: "
                             "as=src/...` directive on line 1\n" % path)
            failures += 1
            continue
        main_as = m.group(1)
        expected_path = os.path.splitext(path)[0] + ".expected"
        if not os.path.exists(expected_path):
            sys.stderr.write("%s: missing golden file %s\n"
                             % (path, expected_path))
            failures += 1
            continue
        expected = set()
        with open(expected_path, encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if line and not line.startswith("#"):
                    lineno, rule = line.split(":", 1)
                    expected.add((int(lineno), rule.strip()))

        diags = Diagnostics()
        analyzer = Analyzer(ci, diags)
        args = ["-x", "c++", "-std=c++20", "-I" + os.path.join(REPO, "src")]
        tu = index.parse(
            path, args=args,
            options=ci.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)
        fatal = [d for d in tu.diagnostics if d.severity >= d.Error]
        if fatal:
            sys.stderr.write("%s: fixture does not parse: %s\n"
                             % (path, fatal[0].spelling))
            failures += 1
            continue
        analyzer.analyze_tu(tu, main_as, path, restrict_to_main=True)
        actual = set((line, rule) for _, line, rule, _ in diags.items)
        if actual != expected:
            failures += 1
            sys.stderr.write("FAIL %s (as %s)\n" % (os.path.basename(path),
                                                    main_as))
            for line, rule in sorted(expected - actual):
                sys.stderr.write("  missing expected %d:%s\n" % (line, rule))
            for line, rule in sorted(actual - expected):
                sys.stderr.write("  unexpected %d:%s\n" % (line, rule))
            for item in sorted(diags.items):
                sys.stderr.write("  got %s:%d: [%s] %s\n" % item)
        else:
            print("ok %s (%d diagnostic(s) as expected)"
                  % (os.path.basename(path), len(expected)))

    if failures:
        sys.stderr.write("prepare_analyze: %d fixture failure(s)\n" % failures)
        return EXIT_DIAGNOSTICS
    print("prepare_analyze: all %d fixtures pass" % len(fixtures))
    return EXIT_CLEAN


# --- entry point -----------------------------------------------------------


def main():
    parser = argparse.ArgumentParser(
        description="AST-grounded PREPARE project rules (see module "
                    "docstring for the rule catalog)")
    parser.add_argument("paths", nargs="*", default=None,
                        help="repo-relative dirs/files to analyze "
                             "(default: src)")
    parser.add_argument("--build-dir",
                        default=os.environ.get("PREPARE_BUILD_DIR", "build"),
                        help="build dir containing compile_commands.json")
    parser.add_argument("--fixtures", nargs="?", const="tests/analyze_fixtures",
                        default=None, metavar="DIR",
                        help="run the self-test fixtures instead of the tree")
    opts = parser.parse_args()

    sys.setrecursionlimit(10000)  # the cursor walk recurses per AST node
    ci = load_cindex()
    if ci is None:
        sys.stderr.write(
            "prepare_analyze: clang python bindings / libclang unavailable; "
            "skipping (install python3-clang + libclang, or set "
            "PREPARE_LIBCLANG)\n")
        return EXIT_UNAVAILABLE

    os.chdir(REPO)
    if opts.fixtures is not None:
        return run_fixtures(ci, opts.fixtures)
    return run_tree(ci, opts.build_dir, opts.paths or ["src"])


if __name__ == "__main__":
    sys.exit(main())
